#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace pathsel {
namespace {

TEST(ThreadPool, ThreadCountResolution) {
  EXPECT_GE(hardware_thread_count(), 1u);
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_EQ(resolve_thread_count(4), 4u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(0), default_thread_count());
  EXPECT_EQ(resolve_thread_count(-3), default_thread_count());
}

TEST(ThreadPool, EnvOverridesDefaultThreadCount) {
  ASSERT_EQ(setenv("PATHSEL_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  EXPECT_EQ(resolve_thread_count(0), 3u);
  ASSERT_EQ(setenv("PATHSEL_THREADS", "garbage", 1), 0);
  EXPECT_EQ(default_thread_count(), hardware_thread_count());
  ASSERT_EQ(unsetenv("PATHSEL_THREADS"), 0);
}

TEST(ThreadPool, ZeroThreadsMeansDefault) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), default_thread_count());
}

TEST(ThreadPool, SingleThreadSpawnsNoWorkers) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, ChunkCount) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 4), 0u);
  EXPECT_EQ(ThreadPool::chunk_count(1, 4), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(4, 4), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(5, 4), 2u);
  EXPECT_EQ(ThreadPool::chunk_count(8, 4), 2u);
}

// Every index is visited exactly once, with the right chunk boundaries, at
// 1 and at N threads.
void check_coverage(unsigned threads, std::size_t n, std::size_t chunk_size) {
  ThreadPool pool{threads};
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v = 0;
  pool.parallel_for(n, chunk_size,
                    [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                      EXPECT_EQ(begin, chunk * chunk_size);
                      EXPECT_LE(end, n);
                      EXPECT_LE(end - begin, chunk_size);
                      for (std::size_t i = begin; i < end; ++i) visits[i] += 1;
                    });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i], 1) << "index " << i;
}

TEST(ThreadPool, CoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    check_coverage(threads, 100, 7);
    check_coverage(threads, 100, 100);
    check_coverage(threads, 100, 1000);  // one short chunk
    check_coverage(threads, 1, 1);
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool{4};
  bool called = false;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MapChunksMergesInChunkIndexOrder) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool{threads};
    const auto out = pool.map_chunks<std::size_t>(
        1000, 13, [](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<std::size_t> local(end - begin);
          std::iota(local.begin(), local.end(), begin);
          return local;
        });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
  }
}

TEST(ThreadPool, MapChunksWithFilteringKeepsSerialOrder) {
  // Chunks of unequal output size still concatenate in index order.
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    const auto out = pool.map_chunks<std::size_t>(
        200, 9, [](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<std::size_t> local;
          for (std::size_t i = begin; i < end; ++i) {
            if (i % 3 == 0) local.push_back(i);
          }
          return local;
        });
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 200; i += 3) expected.push_back(i);
    EXPECT_EQ(out, expected);
  }
}

TEST(ThreadPool, ExceptionPropagates) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    EXPECT_THROW(
        pool.parallel_for(100, 10,
                          [](std::size_t begin, std::size_t, std::size_t) {
                            if (begin == 50) throw std::runtime_error{"boom"};
                          }),
        std::runtime_error);
  }
}

TEST(ThreadPool, LowestChunkExceptionWins) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(100, 10,
                      [](std::size_t, std::size_t, std::size_t chunk) {
                        if (chunk == 3 || chunk == 7) {
                          throw std::runtime_error{"chunk " +
                                                   std::to_string(chunk)};
                        }
                      });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

TEST(ThreadPool, MapChunksPropagatesExceptions) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    EXPECT_THROW(
        pool.map_chunks<int>(100, 10,
                             [](std::size_t begin, std::size_t, std::size_t)
                                 -> std::vector<int> {
                               if (begin == 30) throw std::runtime_error{"boom"};
                               return {static_cast<int>(begin)};
                             }),
        std::runtime_error);
    // The pool survives and the next sweep merges cleanly.
    const auto out = pool.map_chunks<int>(
        30, 10,
        [](std::size_t begin, std::size_t, std::size_t) -> std::vector<int> {
          return {static_cast<int>(begin)};
        });
    EXPECT_EQ(out, (std::vector<int>{0, 10, 20}));
  }
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(10, 1,
                                 [](std::size_t, std::size_t, std::size_t) {
                                   throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(10, 1, [&](std::size_t begin, std::size_t, std::size_t) {
    sum += static_cast<int>(begin);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, SharedPoolReusesWorkersForSameCount) {
  ThreadPool& a = ThreadPool::shared(2);
  EXPECT_EQ(a.thread_count(), 2u);
  // Same requested count returns the same pool — no thread churn.
  EXPECT_EQ(&ThreadPool::shared(2), &a);

  // A different count rebuilds (the old reference is invalidated).
  ThreadPool& b = ThreadPool::shared(3);
  EXPECT_EQ(b.thread_count(), 3u);
  EXPECT_EQ(&ThreadPool::shared(3), &b);

  EXPECT_EQ(ThreadPool::shared(0).thread_count(), default_thread_count());
}

TEST(ThreadPool, SharedPoolRunsSweeps) {
  std::atomic<int> sum{0};
  ThreadPool::shared(4).parallel_for(
      100, 7, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) sum += static_cast<int>(i);
      });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossManySweeps) {
  ThreadPool pool{3};
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, 4, [&](std::size_t begin, std::size_t end,
                                 std::size_t) {
      count += static_cast<int>(end - begin);
    });
    ASSERT_EQ(count, 64);
  }
}

}  // namespace
}  // namespace pathsel
