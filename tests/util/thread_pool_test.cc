#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pathsel {
namespace {

TEST(ThreadPool, ThreadCountResolution) {
  EXPECT_GE(hardware_thread_count(), 1u);
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_EQ(resolve_thread_count(4), 4u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(0), default_thread_count());
  EXPECT_EQ(resolve_thread_count(-3), default_thread_count());
}

TEST(ThreadPool, EnvOverridesDefaultThreadCount) {
  ASSERT_EQ(setenv("PATHSEL_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  EXPECT_EQ(resolve_thread_count(0), 3u);
  ASSERT_EQ(setenv("PATHSEL_THREADS", "garbage", 1), 0);
  EXPECT_EQ(default_thread_count(), hardware_thread_count());
  ASSERT_EQ(unsetenv("PATHSEL_THREADS"), 0);
}

TEST(ThreadPool, ZeroThreadsMeansDefault) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), default_thread_count());
}

TEST(ThreadPool, SingleThreadSpawnsNoWorkers) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, ChunkCount) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 4), 0u);
  EXPECT_EQ(ThreadPool::chunk_count(1, 4), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(4, 4), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(5, 4), 2u);
  EXPECT_EQ(ThreadPool::chunk_count(8, 4), 2u);
}

// Every index is visited exactly once, with the right chunk boundaries, at
// 1 and at N threads.
void check_coverage(unsigned threads, std::size_t n, std::size_t chunk_size) {
  ThreadPool pool{threads};
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v = 0;
  pool.parallel_for(n, chunk_size,
                    [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                      EXPECT_EQ(begin, chunk * chunk_size);
                      EXPECT_LE(end, n);
                      EXPECT_LE(end - begin, chunk_size);
                      for (std::size_t i = begin; i < end; ++i) visits[i] += 1;
                    });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i], 1) << "index " << i;
}

TEST(ThreadPool, CoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    check_coverage(threads, 100, 7);
    check_coverage(threads, 100, 100);
    check_coverage(threads, 100, 1000);  // one short chunk
    check_coverage(threads, 1, 1);
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool{4};
  bool called = false;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MapChunksMergesInChunkIndexOrder) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool{threads};
    const auto out = pool.map_chunks<std::size_t>(
        1000, 13, [](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<std::size_t> local(end - begin);
          std::iota(local.begin(), local.end(), begin);
          return local;
        });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
  }
}

TEST(ThreadPool, MapChunksWithFilteringKeepsSerialOrder) {
  // Chunks of unequal output size still concatenate in index order.
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    const auto out = pool.map_chunks<std::size_t>(
        200, 9, [](std::size_t begin, std::size_t end, std::size_t) {
          std::vector<std::size_t> local;
          for (std::size_t i = begin; i < end; ++i) {
            if (i % 3 == 0) local.push_back(i);
          }
          return local;
        });
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 200; i += 3) expected.push_back(i);
    EXPECT_EQ(out, expected);
  }
}

TEST(ThreadPool, ExceptionPropagates) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    EXPECT_THROW(
        pool.parallel_for(100, 10,
                          [](std::size_t begin, std::size_t, std::size_t) {
                            if (begin == 50) throw std::runtime_error{"boom"};
                          }),
        std::runtime_error);
  }
}

TEST(ThreadPool, LowestChunkExceptionWins) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(100, 10,
                      [](std::size_t, std::size_t, std::size_t chunk) {
                        if (chunk == 3 || chunk == 7) {
                          throw std::runtime_error{"chunk " +
                                                   std::to_string(chunk)};
                        }
                      });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

TEST(ThreadPool, MapChunksPropagatesExceptions) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    EXPECT_THROW(
        pool.map_chunks<int>(100, 10,
                             [](std::size_t begin, std::size_t, std::size_t)
                                 -> std::vector<int> {
                               if (begin == 30) throw std::runtime_error{"boom"};
                               return {static_cast<int>(begin)};
                             }),
        std::runtime_error);
    // The pool survives and the next sweep merges cleanly.
    const auto out = pool.map_chunks<int>(
        30, 10,
        [](std::size_t begin, std::size_t, std::size_t) -> std::vector<int> {
          return {static_cast<int>(begin)};
        });
    EXPECT_EQ(out, (std::vector<int>{0, 10, 20}));
  }
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(10, 1,
                                 [](std::size_t, std::size_t, std::size_t) {
                                   throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
  std::atomic<int> sum{0};
  pool.parallel_for(10, 1, [&](std::size_t begin, std::size_t, std::size_t) {
    sum += static_cast<int>(begin);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, SharedPoolReusesWorkersForSameCount) {
  ThreadPool& a = ThreadPool::shared(2);
  EXPECT_EQ(a.thread_count(), 2u);
  // Same requested count returns the same pool — no thread churn.
  EXPECT_EQ(&ThreadPool::shared(2), &a);

  // A different count rebuilds (the old reference is invalidated).
  ThreadPool& b = ThreadPool::shared(3);
  EXPECT_EQ(b.thread_count(), 3u);
  EXPECT_EQ(&ThreadPool::shared(3), &b);

  EXPECT_EQ(ThreadPool::shared(0).thread_count(), default_thread_count());
}

TEST(ThreadPool, SharedPoolRunsSweeps) {
  std::atomic<int> sum{0};
  ThreadPool::shared(4).parallel_for(
      100, 7, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) sum += static_cast<int>(i);
      });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossManySweeps) {
  ThreadPool pool{3};
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, 4, [&](std::size_t begin, std::size_t end,
                                 std::size_t) {
      count += static_cast<int>(end - begin);
    });
    ASSERT_EQ(count, 64);
  }
}

// --- cancellation ----------------------------------------------------------

TEST(ThreadPool, NullTokenRunsToCompletion) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool{threads};
    std::atomic<int> visited{0};
    const Status st = pool.parallel_for(
        100, 7,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          visited += static_cast<int>(end - begin);
        },
        nullptr);
    EXPECT_TRUE(st.is_ok());
    EXPECT_EQ(visited, 100);
  }
}

TEST(ThreadPool, LiveTokenRunsToCompletion) {
  CancelToken token;
  ThreadPool pool{4};
  std::atomic<int> visited{0};
  const Status st = pool.parallel_for(
      100, 7,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        visited += static_cast<int>(end - begin);
      },
      &token);
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(visited, 100);
}

TEST(ThreadPool, PreCancelledTokenRunsNoChunks) {
  for (const unsigned threads : {1u, 4u, 8u}) {
    CancelToken token;
    token.cancel();
    ThreadPool pool{threads};
    std::atomic<int> chunks{0};
    const Status st = pool.parallel_for(
        100, 10,
        [&](std::size_t, std::size_t, std::size_t) { chunks += 1; }, &token);
    EXPECT_EQ(st.code(), ErrorCode::kCancelled) << threads << " threads";
    EXPECT_EQ(chunks, 0) << threads << " threads";
  }
}

TEST(ThreadPool, ExpiredDeadlineSurfacesDeadlineExceeded) {
  CancelToken token;
  token.set_deadline_after_seconds(0.0);
  ThreadPool pool{4};
  const Status st = pool.parallel_for(
      100, 10, [](std::size_t, std::size_t, std::size_t) {}, &token);
  EXPECT_EQ(st.code(), ErrorCode::kDeadlineExceeded);
}

// A chunk trips the token mid-sweep: in-flight chunks complete (every visited
// index is visited exactly once — no torn chunk), unclaimed chunks never
// start, the call returns the token's status, and the pool is immediately
// reusable — i.e. every helper task drained instead of leaking.
void check_mid_sweep_cancel(unsigned threads) {
  CancelToken token;
  ThreadPool pool{threads};
  const std::size_t n = 10000;
  const std::size_t chunk_size = 10;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v = 0;
  std::atomic<int> chunks_run{0};
  const Status st = pool.parallel_for(
      n, chunk_size,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        chunks_run += 1;
        if (chunk == 5) token.cancel();
        for (std::size_t i = begin; i < end; ++i) visits[i] += 1;
      },
      &token);
  EXPECT_EQ(st.code(), ErrorCode::kCancelled) << threads << " threads";
  // Drained at a chunk boundary: some chunks ran, far from all of them, and
  // no index was ever visited twice or torn mid-chunk.
  EXPECT_GE(chunks_run, 1) << threads << " threads";
  EXPECT_LT(chunks_run, static_cast<int>(n / chunk_size)) << threads
                                                          << " threads";
  for (std::size_t i = 0; i < n; i += chunk_size) {
    int in_chunk = 0;
    for (std::size_t j = i; j < i + chunk_size; ++j) {
      ASSERT_LE(visits[j], 1) << "index " << j << " visited twice";
      in_chunk += visits[j];
    }
    EXPECT_TRUE(in_chunk == 0 || in_chunk == static_cast<int>(chunk_size))
        << "chunk at " << i << " was torn";
  }

  // No leaked tasks: the next sweep on the same pool covers everything.
  std::atomic<int> after{0};
  pool.parallel_for(64, 4, [&](std::size_t begin, std::size_t end,
                               std::size_t) {
    after += static_cast<int>(end - begin);
  });
  EXPECT_EQ(after, 64) << threads << " threads";
}

TEST(ThreadPool, CancelMidSweepDrainsAtChunkBoundary) {
  for (const unsigned threads : {1u, 4u, 8u}) check_mid_sweep_cancel(threads);
}

TEST(ThreadPool, CancelFromAnotherThreadDrains) {
  for (const unsigned threads : {1u, 4u, 8u}) {
    CancelToken token;
    ThreadPool pool{threads};
    std::atomic<int> chunks_run{0};
    // The canceller fires once the sweep reports its first chunk, and every
    // chunk holds until the trip is visible — no timing dependence, and the
    // in-flight chunk count is bounded by the executor count.
    std::thread canceller{[&] {
      while (chunks_run.load() == 0) std::this_thread::yield();
      token.cancel();
    }};
    const Status st = pool.parallel_for(
        100000, 1,
        [&](std::size_t, std::size_t, std::size_t) {
          chunks_run += 1;
          while (!token.cancelled()) std::this_thread::yield();
        },
        &token);
    canceller.join();
    EXPECT_EQ(st.code(), ErrorCode::kCancelled) << threads << " threads";
    EXPECT_LE(chunks_run, static_cast<int>(threads) + 1)
        << threads << " threads";
  }
}

TEST(ThreadPool, CancellableMapChunksDiscardsPartialOutput) {
  for (const unsigned threads : {1u, 4u}) {
    CancelToken token;
    ThreadPool pool{threads};
    const Result<std::vector<int>> cancelled = pool.map_chunks<int>(
        1000, 10,
        [&](std::size_t begin, std::size_t, std::size_t chunk)
            -> std::vector<int> {
          if (chunk == 3) token.cancel();
          return {static_cast<int>(begin)};
        },
        &token);
    ASSERT_FALSE(cancelled.is_ok());
    EXPECT_EQ(cancelled.status().code(), ErrorCode::kCancelled);

    // A live token leaves map_chunks bit-identical to the uncancellable one.
    const Result<std::vector<int>> ok = pool.map_chunks<int>(
        30, 10,
        [](std::size_t begin, std::size_t, std::size_t) -> std::vector<int> {
          return {static_cast<int>(begin)};
        },
        nullptr);
    ASSERT_TRUE(ok.is_ok());
    EXPECT_EQ(ok.value(), (std::vector<int>{0, 10, 20}));
  }
}

}  // namespace
}  // namespace pathsel
