#include "sim/load_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::sim {
namespace {

LoadModel default_model() { return LoadModel{LoadModelConfig{}}; }

SimTime weekday_at(double hour) {
  return SimTime::start() + Duration::days(2) + Duration::hours(hour);
}

TEST(LoadModel, PeakAtConfiguredHour) {
  const LoadModel m = default_model();
  EXPECT_GT(m.diurnal_factor(weekday_at(10.0)),
            m.diurnal_factor(weekday_at(3.0)));
  EXPECT_GT(m.diurnal_factor(weekday_at(10.0)),
            m.diurnal_factor(weekday_at(22.0)));
  EXPECT_NEAR(m.diurnal_factor(weekday_at(10.0)), 1.0, 1e-6);
}

TEST(LoadModel, TroughMatchesConfig) {
  LoadModelConfig cfg;
  cfg.weekday_trough = 0.3;
  const LoadModel m{cfg};
  // Far from the peak the factor approaches the trough.
  EXPECT_NEAR(m.diurnal_factor(weekday_at(22.5)), 0.3, 0.05);
}

TEST(LoadModel, WeekendIsQuieter) {
  const LoadModel m = default_model();
  const SimTime weekday = weekday_at(10.0);
  const SimTime weekend =
      SimTime::start() + Duration::days(5) + Duration::hours(10.0);
  EXPECT_LT(m.diurnal_factor(weekend), m.diurnal_factor(weekday));
}

TEST(LoadModel, TimezoneOffsetShiftsPeak) {
  const LoadModel m = default_model();
  // An east-coast link (+3 h) peaks three hours earlier in trace time.
  EXPECT_GT(m.diurnal_factor(weekday_at(7.0), 3.0),
            m.diurnal_factor(weekday_at(7.0), 0.0));
}

TEST(LoadModel, UtilizationWithinBounds) {
  const LoadModel m = default_model();
  const topo::Topology t = test::make_two_as_topology();
  for (int h = 0; h < 48; ++h) {
    for (const auto& link : t.links()) {
      const double u = m.utilization(link, weekday_at(h / 2.0));
      EXPECT_GE(u, 0.01);
      EXPECT_LE(u, 0.985);
    }
  }
}

TEST(LoadModel, UtilizationDeterministic) {
  const LoadModel a = default_model();
  const LoadModel b = default_model();
  const topo::Topology t = test::make_two_as_topology();
  const SimTime when = weekday_at(14.25);
  EXPECT_DOUBLE_EQ(a.utilization(t.links()[0], when),
                   b.utilization(t.links()[0], when));
}

TEST(LoadModel, DifferentSeedsGiveDifferentWeather) {
  LoadModelConfig c1;
  LoadModelConfig c2;
  c2.seed = c1.seed + 1;
  const LoadModel a{c1};
  const LoadModel b{c2};
  const topo::Topology t = test::make_two_as_topology();
  const SimTime when = weekday_at(14.0);
  EXPECT_NE(a.utilization(t.links()[0], when),
            b.utilization(t.links()[0], when));
}

TEST(LoadModel, WeatherVariesOverTime) {
  const LoadModel m = default_model();
  const topo::Topology t = test::make_two_as_topology();
  // Two instants hours apart at the same diurnal phase on different days.
  const double u1 = m.utilization(t.links()[0], weekday_at(10.0));
  const double u2 =
      m.utilization(t.links()[0], weekday_at(10.0 + 24.0));
  EXPECT_NE(u1, u2);
}

TEST(LoadModel, WeatherContinuityAcrossBucketBoundary) {
  const LoadModel m = default_model();
  const topo::Topology t = test::make_two_as_topology();
  // Samples 1 second apart must differ by a small amount (interpolated
  // field, smooth diurnal curve).
  const SimTime a = weekday_at(9.0);
  const SimTime b = a + Duration::seconds(1);
  EXPECT_NEAR(m.utilization(t.links()[0], a), m.utilization(t.links()[0], b),
              0.01);
}

TEST(LoadModel, HigherBaseUtilizationGivesHigherLoad) {
  const LoadModel m = default_model();
  topo::Topology t = test::make_two_as_topology();
  topo::Link lo = t.links()[0];
  topo::Link hi = t.links()[0];
  lo.base_utilization = 0.1;
  hi.base_utilization = 0.8;
  const SimTime when = weekday_at(10.0);
  EXPECT_LT(m.utilization(lo, when), m.utilization(hi, when));
}

}  // namespace
}  // namespace pathsel::sim
