#include "sim/fault.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace pathsel::sim {
namespace {

topo::Topology small_topology(std::uint64_t seed = 1) {
  topo::GeneratorConfig g;
  g.seed = seed;
  g.backbone_count = 3;
  g.regional_count = 6;
  g.stub_count = 12;
  return topo::generate_topology(g);
}

FaultConfig full_config(std::uint64_t seed = 42) {
  FaultConfig cfg = FaultConfig::at_intensity(1.0, seed);
  return cfg;
}

TEST(FaultPlan, DefaultPlanIsDisabledAndEmpty) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.routing_transitions().empty());
  EXPECT_TRUE(plan.link_down_intervals(topo::LinkId{0}).empty());
  EXPECT_TRUE(plan.host_down_intervals(topo::HostId{0}).empty());
  EXPECT_FALSE(plan.link_physically_down(topo::LinkId{0}, SimTime::start()));
  EXPECT_FALSE(plan.probe_stuck(topo::HostId{0}, topo::HostId{1},
                                SimTime::start()));
}

TEST(FaultPlan, ZeroIntensitySchedulesNothing) {
  const FaultConfig cfg = FaultConfig::at_intensity(0.0);
  EXPECT_FALSE(cfg.enabled());
  const topo::Topology topo = small_topology();
  const FaultPlan plan{cfg, topo, Duration::days(7)};
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.routing_transitions().empty());
  for (const auto& link : topo.links()) {
    EXPECT_TRUE(plan.link_down_intervals(link.id).empty());
  }
}

TEST(FaultPlan, Deterministic) {
  const topo::Topology topo = small_topology();
  const FaultPlan a{full_config(), topo, Duration::days(7)};
  const FaultPlan b{full_config(), topo, Duration::days(7)};
  EXPECT_EQ(a.routing_transitions(), b.routing_transitions());
  for (const auto& link : topo.links()) {
    EXPECT_EQ(a.link_down_intervals(link.id), b.link_down_intervals(link.id));
  }
  for (const auto& host : topo.hosts()) {
    EXPECT_EQ(a.host_down_intervals(host.id), b.host_down_intervals(host.id));
    EXPECT_EQ(a.storm_intervals(host.id), b.storm_intervals(host.id));
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const topo::Topology topo = small_topology();
  const FaultPlan a{full_config(42), topo, Duration::days(7)};
  const FaultPlan b{full_config(43), topo, Duration::days(7)};
  EXPECT_NE(a.routing_transitions(), b.routing_transitions());
}

TEST(FaultPlan, IntervalInvariants) {
  const topo::Topology topo = small_topology();
  const Duration trace = Duration::days(7);
  const FaultPlan plan{full_config(), topo, trace};
  const SimTime end = SimTime::start() + trace;
  std::size_t total = 0;
  auto check = [&](const std::vector<FaultInterval>& ivs) {
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      EXPECT_LT(ivs[i].begin, ivs[i].end);
      EXPECT_FALSE(ivs[i].begin < SimTime::start());
      EXPECT_FALSE(end < ivs[i].end);
      if (i > 0) {
        EXPECT_LT(ivs[i - 1].end, ivs[i].begin);  // disjoint, sorted
      }
      ++total;
    }
  };
  for (const auto& link : topo.links()) check(plan.link_down_intervals(link.id));
  for (const auto& host : topo.hosts()) {
    check(plan.host_down_intervals(host.id));
    check(plan.storm_intervals(host.id));
  }
  EXPECT_GT(total, 0u);  // full intensity over 7 days must schedule something
}

TEST(FaultPlan, QueriesMatchIntervals) {
  const topo::Topology topo = small_topology();
  const FaultPlan plan{full_config(), topo, Duration::days(7)};
  for (const auto& link : topo.links()) {
    for (const auto& iv : plan.link_down_intervals(link.id)) {
      EXPECT_TRUE(plan.link_physically_down(link.id, iv.begin));
      EXPECT_FALSE(plan.link_physically_down(link.id, iv.end));  // half-open
    }
  }
  for (const auto& host : topo.hosts()) {
    for (const auto& iv : plan.host_down_intervals(host.id)) {
      EXPECT_TRUE(plan.host_crashed(host.id, iv.begin));
      EXPECT_FALSE(plan.host_crashed(host.id, iv.end));
    }
    for (const auto& iv : plan.storm_intervals(host.id)) {
      EXPECT_TRUE(plan.icmp_storm(host.id, iv.begin));
      EXPECT_FALSE(plan.icmp_storm(host.id, iv.end));
    }
  }
}

TEST(FaultPlan, RoutedViewLagsPhysicalByReconvergence) {
  const topo::Topology topo = small_topology();
  FaultConfig cfg = full_config();
  cfg.reconvergence = Duration::minutes(5);
  const FaultPlan plan{cfg, topo, Duration::days(7)};
  for (const auto& link : topo.links()) {
    for (int hour = 0; hour < 7 * 24; hour += 2) {
      const SimTime t = SimTime::start() + Duration::hours(hour);
      EXPECT_EQ(plan.link_routed_down(link.id, t),
                plan.link_physically_down(
                    link.id, SimTime::at(t.since_start() - cfg.reconvergence)));
    }
  }
}

TEST(FaultPlan, ExchangeOutageTakesDownWholeFabric) {
  const topo::Topology topo = small_topology();
  const auto fabrics = topo.exchange_fabrics();
  ASSERT_FALSE(fabrics.empty());
  FaultConfig cfg;
  cfg.exchange_outage_fraction = 1.0;  // only fabric outages
  const FaultPlan plan{cfg, topo, Duration::days(7)};
  for (const auto& fabric : fabrics) {
    ASSERT_FALSE(fabric.empty());
    const auto& first = plan.link_down_intervals(fabric.front());
    ASSERT_EQ(first.size(), 1u);
    for (const topo::LinkId link : fabric) {
      EXPECT_EQ(plan.link_down_intervals(link), first);  // shared window
    }
  }
}

TEST(FaultPlan, ProbeStuckIsAPureFunctionOfTheAttempt) {
  const topo::Topology topo = small_topology();
  FaultConfig cfg;
  cfg.probe_stuck_rate = 0.5;
  const FaultPlan plan{cfg, topo, Duration::days(7)};
  const FaultPlan again{cfg, topo, Duration::days(7)};
  int stuck = 0;
  for (int k = 0; k < 200; ++k) {
    const SimTime t = SimTime::start() + Duration::minutes(k);
    const bool s = plan.probe_stuck(topo::HostId{0}, topo::HostId{1}, t);
    EXPECT_EQ(s, plan.probe_stuck(topo::HostId{0}, topo::HostId{1}, t));
    EXPECT_EQ(s, again.probe_stuck(topo::HostId{0}, topo::HostId{1}, t));
    stuck += s ? 1 : 0;
  }
  EXPECT_GT(stuck, 50);
  EXPECT_LT(stuck, 150);
}

TEST(FaultPlan, TransitionsAreSortedAndUnique) {
  const topo::Topology topo = small_topology();
  const FaultPlan plan{full_config(), topo, Duration::days(7)};
  const auto& ts = plan.routing_transitions();
  ASSERT_FALSE(ts.empty());
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LT(ts[i - 1], ts[i]);
}

TEST(FaultInjector, RebuildsOnlyWhenCrossingTransitions) {
  const Network net{small_topology(), NetworkConfig{}};
  FaultConfig cfg;
  cfg.link_flap_fraction = 1.0;
  const FaultPlan plan{cfg, net.topology(), Duration::days(7)};
  ASSERT_FALSE(plan.routing_transitions().empty());
  FaultInjector inj{net, plan};
  EXPECT_EQ(inj.rebuild_count(), 0u);
  inj.advance_to(SimTime::start());
  EXPECT_EQ(inj.rebuild_count(), 0u);  // no transition at trace start
  inj.advance_to(SimTime::start() + Duration::days(7));
  const std::size_t after_all = inj.rebuild_count();
  EXPECT_GT(after_all, 0u);
  EXPECT_LE(after_all, plan.routing_transitions().size());
  inj.advance_to(SimTime::start() + Duration::days(7));
  EXPECT_EQ(inj.rebuild_count(), after_all);  // idempotent at the same time
}

TEST(FaultInjector, AvoidsLinksRoutingKnowsAreDown) {
  const Network net{small_topology(), NetworkConfig{}};
  FaultConfig cfg;
  cfg.link_flap_fraction = 1.0;
  cfg.reconvergence = Duration{};  // instant convergence: routed == physical
  const FaultPlan plan{cfg, net.topology(), Duration::days(7)};
  FaultInjector inj{net, plan};
  const auto hosts = net.topology().hosts();
  ASSERT_GE(hosts.size(), 6u);
  for (int hour = 0; hour < 7 * 24; hour += 6) {
    const SimTime t = SimTime::start() + Duration::hours(hour);
    inj.advance_to(t);
    for (std::size_t i = 0; i + 1 < 6; i += 2) {
      const auto& path = inj.effective_path(hosts[i].id, hosts[i + 1].id);
      if (!path.valid()) continue;  // faults may disconnect the pair
      for (const auto& hop : path.hops) {
        EXPECT_FALSE(plan.link_physically_down(hop.via, t))
            << "resolved path crosses a link routing knows is dead";
      }
      // With zero reconvergence lag there is no blackhole window.
      EXPECT_FALSE(inj.blackholed(path, t));
    }
  }
}

TEST(FaultInjector, BlackholeRequiresAPhysicallyDeadHop) {
  const Network net{small_topology(), NetworkConfig{}};
  FaultConfig cfg;
  cfg.link_flap_fraction = 1.0;
  cfg.reconvergence = Duration::minutes(30);  // long stale-routing windows
  const FaultPlan plan{cfg, net.topology(), Duration::days(7)};
  FaultInjector inj{net, plan};
  const auto hosts = net.topology().hosts();
  for (int minute = 0; minute < 7 * 24 * 60; minute += 90) {
    const SimTime t = SimTime::start() + Duration::minutes(minute);
    inj.advance_to(t);
    const auto& path = inj.effective_path(hosts[0].id, hosts[3].id);
    if (!path.valid()) continue;
    bool dead_hop = false;
    for (const auto& hop : path.hops) {
      dead_hop = dead_hop || plan.link_physically_down(hop.via, t);
    }
    EXPECT_EQ(inj.blackholed(path, t), dead_hop);
  }
}

}  // namespace
}  // namespace pathsel::sim
