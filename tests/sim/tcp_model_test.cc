#include "sim/tcp_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pathsel::sim {
namespace {

TEST(TcpModel, KnownValue) {
  // BW = (MSS/RTT) * C / sqrt(p): 1460 B / 0.1 s * 1.2247 / 0.1 = 178.8 kB/s
  // at p = 0.01.
  EXPECT_NEAR(mathis_bandwidth_kBps(100.0, 0.01), 178.8, 0.5);
}

TEST(TcpModel, BandwidthInverseInRtt) {
  EXPECT_NEAR(mathis_bandwidth_kBps(50.0, 0.01),
              2.0 * mathis_bandwidth_kBps(100.0, 0.01), 1e-9);
}

TEST(TcpModel, BandwidthInverseInSqrtLoss) {
  EXPECT_NEAR(mathis_bandwidth_kBps(100.0, 0.01),
              2.0 * mathis_bandwidth_kBps(100.0, 0.04), 1e-9);
}

TEST(TcpModel, LargerMssFaster) {
  EXPECT_GT(mathis_bandwidth_kBps(100.0, 0.01, 1460.0),
            mathis_bandwidth_kBps(100.0, 0.01, 536.0));
}

TEST(TcpModel, SelfLossRoundTrips) {
  const double rtt = 80.0;
  const double bw = 250.0;
  const double p = mathis_self_loss(rtt, bw);
  EXPECT_NEAR(mathis_bandwidth_kBps(rtt, p), bw, 1e-6);
}

TEST(TcpModel, SelfLossShrinksWithBandwidth) {
  EXPECT_GT(mathis_self_loss(100.0, 50.0), mathis_self_loss(100.0, 500.0));
}

TEST(TcpModel, InvalidArgumentsAbort) {
  EXPECT_DEATH((void)mathis_bandwidth_kBps(0.0, 0.01), "rtt");
  EXPECT_DEATH((void)mathis_bandwidth_kBps(10.0, 0.0), "loss");
  EXPECT_DEATH((void)mathis_self_loss(10.0, 0.0), "positive");
}

TEST(TcpModel, MathisConstant) {
  EXPECT_NEAR(kMathisC, std::sqrt(1.5), 1e-12);
}

}  // namespace
}  // namespace pathsel::sim
