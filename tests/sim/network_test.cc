#include "sim/network.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace pathsel::sim {
namespace {

Network make_network(std::uint64_t seed, NetworkConfig cfg = {}) {
  topo::GeneratorConfig g;
  g.seed = seed;
  g.backbone_count = 4;
  g.regional_count = 8;
  g.stub_count = 20;
  g.rate_limited_host_fraction = 0.3;
  cfg.seed = seed;
  return Network{topo::generate_topology(g), cfg};
}

SimTime noon() { return SimTime::start() + Duration::hours(12); }

TEST(Network, DefaultPathCachedAndStable) {
  const Network net = make_network(1);
  const auto& p1 = net.default_path(topo::HostId{0}, topo::HostId{1});
  const auto& p2 = net.default_path(topo::HostId{0}, topo::HostId{1});
  EXPECT_EQ(&p1, &p2);
  EXPECT_TRUE(p1.valid());
}

TEST(Network, TracerouteDeterministic) {
  const Network a = make_network(2);
  const Network b = make_network(2);
  const auto ra = a.traceroute(topo::HostId{0}, topo::HostId{5}, noon());
  const auto rb = b.traceroute(topo::HostId{0}, topo::HostId{5}, noon());
  EXPECT_EQ(ra.completed, rb.completed);
  for (std::size_t i = 0; i < ra.samples.size(); ++i) {
    EXPECT_EQ(ra.samples[i].lost, rb.samples[i].lost);
    EXPECT_DOUBLE_EQ(ra.samples[i].rtt_ms, rb.samples[i].rtt_ms);
  }
  EXPECT_EQ(ra.as_path, rb.as_path);
}

TEST(Network, TracerouteRttExceedsPropagation) {
  const Network net = make_network(3);
  const auto& fwd = net.default_path(topo::HostId{0}, topo::HostId{5});
  const auto& rev = net.default_path(topo::HostId{5}, topo::HostId{0});
  const double floor = fwd.propagation_delay_ms(net.topology()) +
                       rev.propagation_delay_ms(net.topology());
  for (int k = 0; k < 20; ++k) {
    const auto r = net.traceroute(topo::HostId{0}, topo::HostId{5},
                                  noon() + Duration::minutes(k));
    if (!r.completed) continue;
    for (const auto& s : r.samples) {
      if (!s.lost) {
        EXPECT_GT(s.rtt_ms, floor);
      }
    }
  }
}

TEST(Network, TracerouteReportsForwardAsPath) {
  const Network net = make_network(4);
  const auto r = net.traceroute(topo::HostId{1}, topo::HostId{6}, noon());
  const auto& fwd = net.default_path(topo::HostId{1}, topo::HostId{6});
  EXPECT_EQ(r.as_path, fwd.as_path);
}

TEST(Network, RateLimitedTargetsDropLaterSamples) {
  NetworkConfig cfg;
  cfg.rate_limit_drop = 1.0;  // always drop samples 2 and 3
  cfg.measurement_failure_rate = 0.0;
  const Network net = make_network(5, cfg);
  topo::HostId limited{};
  for (const auto& h : net.topology().hosts()) {
    if (h.icmp_rate_limited) {
      limited = h.id;
      break;
    }
  }
  ASSERT_TRUE(limited.valid());
  const topo::HostId src =
      limited == topo::HostId{0} ? topo::HostId{1} : topo::HostId{0};
  const auto r = net.traceroute(src, limited, noon());
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.samples[1].lost);
  EXPECT_TRUE(r.samples[2].lost);
}

TEST(Network, FailureRateHonored) {
  NetworkConfig cfg;
  cfg.measurement_failure_rate = 1.0;
  const Network net = make_network(6, cfg);
  const auto r = net.traceroute(topo::HostId{0}, topo::HostId{1}, noon());
  EXPECT_FALSE(r.completed);
}

TEST(Network, ExpectedDelayHigherAtPeak) {
  const Network net = make_network(7);
  const auto& path = net.default_path(topo::HostId{0}, topo::HostId{8});
  // Average across several days to wash out the weather field.
  double peak = 0.0;
  double trough = 0.0;
  for (int d = 0; d < 5; ++d) {
    peak += net.expected_one_way_ms(
        path, SimTime::start() + Duration::days(d) + Duration::hours(10));
    trough += net.expected_one_way_ms(
        path, SimTime::start() + Duration::days(d) + Duration::hours(3));
  }
  EXPECT_GT(peak, trough);
}

TEST(Network, LossProbabilityWithinUnitInterval) {
  const Network net = make_network(8);
  const auto& path = net.default_path(topo::HostId{2}, topo::HostId{9});
  const double p = net.one_way_loss_probability(path, noon());
  EXPECT_GE(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(Network, BottleneckBandwidthPositiveAndBounded) {
  const Network net = make_network(9);
  const auto& path = net.default_path(topo::HostId{3}, topo::HostId{7});
  const double bw = net.bottleneck_available_kBps(path, noon());
  EXPECT_GT(bw, 0.0);
  // No link is faster than OC12 (622 Mbps = 77750 kB/s).
  EXPECT_LE(bw, 78000.0);
}

TEST(Network, TcpTransferRespectsCaps) {
  NetworkConfig cfg;
  cfg.measurement_failure_rate = 0.0;
  cfg.tcp_window_kB = 16.0;
  const Network net = make_network(10, cfg);
  for (int i = 0; i < 10; ++i) {
    const auto r = net.tcp_transfer(topo::HostId{0}, topo::HostId{i + 2},
                                    noon() + Duration::minutes(i));
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.bandwidth_kBps, 0.0);
    // Window cap: 16 KB / rtt.
    EXPECT_LE(r.bandwidth_kBps, 16.0 * 1.024 / (r.rtt_ms / 1000.0) + 1e-6);
    EXPECT_GT(r.rtt_ms, 0.0);
    EXPECT_GE(r.loss_rate, 2e-5);
  }
}

TEST(Network, TcpTransferDeterministic) {
  const Network a = make_network(11);
  const Network b = make_network(11);
  const auto ra = a.tcp_transfer(topo::HostId{0}, topo::HostId{4}, noon());
  const auto rb = b.tcp_transfer(topo::HostId{0}, topo::HostId{4}, noon());
  EXPECT_DOUBLE_EQ(ra.bandwidth_kBps, rb.bandwidth_kBps);
  EXPECT_DOUBLE_EQ(ra.rtt_ms, rb.rtt_ms);
  EXPECT_DOUBLE_EQ(ra.loss_rate, rb.loss_rate);
}

TEST(Network, DifferentTimesGiveDifferentSamples) {
  const Network net = make_network(12);
  const auto r1 = net.traceroute(topo::HostId{0}, topo::HostId{5}, noon());
  const auto r2 = net.traceroute(topo::HostId{0}, topo::HostId{5},
                                 noon() + Duration::seconds(30));
  bool any_diff = false;
  for (std::size_t i = 0; i < r1.samples.size(); ++i) {
    if (r1.samples[i].rtt_ms != r2.samples[i].rtt_ms) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Network, SamePairSelfAborts) {
  const Network net = make_network(13);
  EXPECT_DEATH((void)net.default_path(topo::HostId{0}, topo::HostId{0}),
               "distinct");
}

TEST(Network, TracerouteElapsedScalesWithHops) {
  const Network net = make_network(14);
  const auto r = net.traceroute(topo::HostId{0}, topo::HostId{5}, noon());
  const auto& fwd = net.default_path(topo::HostId{0}, topo::HostId{5});
  EXPECT_GT(r.elapsed.total_seconds(), 1.9);
  EXPECT_NEAR(r.elapsed.total_seconds(),
              2.0 + 1.5 * static_cast<double>(fwd.hop_count()), 1e-9);
}

}  // namespace
}  // namespace pathsel::sim
