#include "sim/link_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::sim {
namespace {

topo::Link make_link(double capacity, topo::LinkKind kind) {
  topo::Link l;
  l.id = topo::LinkId{0};
  l.capacity_mbps = capacity;
  l.kind = kind;
  l.prop_delay_ms = 10.0;
  return l;
}

TEST(LinkModel, ServiceTimeFromCapacity) {
  const LinkModel m{LinkModelConfig{}};
  // 12000 bits at 1.5 Mbps = 8 ms; at 45 Mbps ~ 0.267 ms.
  EXPECT_NEAR(m.service_time_ms(make_link(1.5, topo::LinkKind::kTransit)), 8.0,
              1e-9);
  EXPECT_NEAR(m.service_time_ms(make_link(45.0, topo::LinkKind::kTransit)),
              0.2667, 1e-3);
}

TEST(LinkModel, QueueingDelayMonotoneInUtilization) {
  const LinkModel m{LinkModelConfig{}};
  const auto l = make_link(45.0, topo::LinkKind::kTransit);
  double prev = -1.0;
  for (double u = 0.1; u <= 0.9; u += 0.1) {
    const double q = m.mean_queueing_delay_ms(l, u);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(LinkModel, QueueingDelayZeroAtZeroUtilization) {
  const LinkModel m{LinkModelConfig{}};
  EXPECT_DOUBLE_EQ(
      m.mean_queueing_delay_ms(make_link(45.0, topo::LinkKind::kTransit), 0.0),
      0.0);
}

TEST(LinkModel, ExchangeFabricsQueueWorse) {
  const LinkModel m{LinkModelConfig{}};
  const auto transit = make_link(45.0, topo::LinkKind::kTransit);
  const auto exchange = make_link(45.0, topo::LinkKind::kPublicExchange);
  EXPECT_GT(m.mean_queueing_delay_ms(exchange, 0.8),
            m.mean_queueing_delay_ms(transit, 0.8));
}

TEST(LinkModel, UtilizationClampPreventsInfiniteQueue) {
  const LinkModel m{LinkModelConfig{}};
  const auto l = make_link(45.0, topo::LinkKind::kTransit);
  EXPECT_TRUE(std::isfinite(m.mean_queueing_delay_ms(l, 1.0)));
}

TEST(LinkModel, LossNegligibleBelowKnee) {
  const LinkModel m{LinkModelConfig{}};
  const auto l = make_link(45.0, topo::LinkKind::kTransit);
  EXPECT_NEAR(m.loss_probability(l, 0.3), m.config().base_loss, 1e-9);
}

TEST(LinkModel, LossRisesSteeplyAboveKnee) {
  const LinkModel m{LinkModelConfig{}};
  const auto l = make_link(45.0, topo::LinkKind::kTransit);
  const double at_knee = m.loss_probability(l, m.config().loss_knee_utilization);
  const double at_90 = m.loss_probability(l, 0.9);
  const double at_98 = m.loss_probability(l, 0.98);
  EXPECT_LT(at_knee, at_90);
  EXPECT_LT(at_90, at_98);
  EXPECT_GT(at_98, 0.02);
}

TEST(LinkModel, ExchangeLosesMoreWhenSaturated) {
  const LinkModel m{LinkModelConfig{}};
  EXPECT_GT(m.loss_probability(make_link(45.0, topo::LinkKind::kPublicExchange),
                               0.95),
            m.loss_probability(make_link(45.0, topo::LinkKind::kTransit),
                               0.95));
}

TEST(LinkModel, LossCappedAtHalf) {
  LinkModelConfig cfg;
  cfg.loss_at_saturation = 10.0;  // absurd on purpose
  const LinkModel m{cfg};
  EXPECT_LE(m.loss_probability(make_link(45.0, topo::LinkKind::kPublicExchange),
                               1.0),
            0.5);
}

TEST(LinkModel, SampleCrossingIncludesPropagationFloor) {
  const LinkModel m{LinkModelConfig{}};
  const auto l = make_link(45.0, topo::LinkKind::kTransit);
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(m.sample_crossing_ms(l, 0.5, rng),
              l.prop_delay_ms + m.config().router_processing_ms);
  }
}

TEST(LinkModel, SampleCrossingMeanTracksModel) {
  const LinkModel m{LinkModelConfig{}};
  const auto l = make_link(1.5, topo::LinkKind::kTransit);  // T1: big queues
  Rng rng{2};
  double total = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += m.sample_crossing_ms(l, 0.8, rng);
  const double expected = l.prop_delay_ms + m.config().router_processing_ms +
                          m.mean_queueing_delay_ms(l, 0.8);
  EXPECT_NEAR(total / kN, expected, expected * 0.05);
}

}  // namespace
}  // namespace pathsel::sim
