// Fault-survivability replay: segment-exact availability accounting,
// cross-checked against dense time sampling, plus the zero-intensity
// identity, spec validation, thread invariance and cancellation.
#include "sim/survivability.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace pathsel::sim {
namespace {

topo::Topology small_topology(std::uint64_t seed = 1) {
  topo::GeneratorConfig g;
  g.seed = seed;
  g.backbone_count = 3;
  g.regional_count = 6;
  g.stub_count = 12;
  return topo::generate_topology(g);
}

Network make_network(std::uint64_t seed = 1) {
  return Network{small_topology(seed), NetworkConfig{}};
}

// Direct, relayed, and "either of the two" specs over pairs the fault-free
// routing can actually resolve (including the relay legs).
std::vector<PairSpec> make_specs(const Network& net, std::size_t max_pairs) {
  const auto& hosts = net.topology().hosts();
  std::vector<PairSpec> specs;
  for (std::size_t i = 0; i < hosts.size() && specs.size() < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < hosts.size() && specs.size() < max_pairs;
         ++j) {
      const topo::HostId a = hosts[i].id;
      const topo::HostId b = hosts[j].id;
      if (!net.default_path(a, b).valid()) continue;
      topo::HostId relay{};
      for (const topo::Host& host : hosts) {
        if (host.id == a || host.id == b) continue;
        if (net.default_path(a, host.id).valid() &&
            net.default_path(host.id, b).valid()) {
          relay = host.id;
          break;
        }
      }
      if (!relay.valid()) continue;
      PairSpec spec;
      spec.paths.push_back({"direct", {a, b}});
      spec.paths.push_back({"relay", {a, relay, b}});
      spec.groups.push_back({"either", {0, 1}});
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

// Independent reference: sample the trace on a fine grid with a fresh
// injector and score each path/group by the fraction of up samples.  Exact
// replay must agree within one grid step per state boundary.
struct SampledPair {
  std::vector<double> paths;
  std::vector<double> groups;
};

std::vector<SampledPair> sample_availability(const Network& net,
                                             const FaultPlan& plan,
                                             const std::vector<PairSpec>& pairs,
                                             Duration step) {
  const std::int64_t samples = static_cast<std::int64_t>(
      plan.trace_duration().total_seconds() / step.total_seconds());
  std::vector<SampledPair> out(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    out[p].paths.assign(pairs[p].paths.size(), 0.0);
    out[p].groups.assign(pairs[p].groups.size(), 0.0);
  }
  FaultInjector injector{net, plan};
  std::vector<char> path_up;
  for (std::int64_t s = 0; s < samples; ++s) {
    const SimTime t = SimTime::start() + step * static_cast<double>(s);
    injector.advance_to(t);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      const PairSpec& spec = pairs[p];
      path_up.assign(spec.paths.size(), 1);
      for (std::size_t i = 0; i < spec.paths.size(); ++i) {
        const std::vector<topo::HostId>& hops = spec.paths[i].hops;
        for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
          if (plan.host_crashed(hops[h], t) ||
              plan.host_crashed(hops[h + 1], t)) {
            path_up[i] = 0;
            break;
          }
          const route::RouterPath& routed =
              injector.effective_path(hops[h], hops[h + 1]);
          if (!routed.valid() || injector.blackholed(routed, t)) {
            path_up[i] = 0;
            break;
          }
        }
        if (path_up[i] != 0) out[p].paths[i] += 1.0;
      }
      for (std::size_t g = 0; g < spec.groups.size(); ++g) {
        const bool up = std::any_of(
            spec.groups[g].members.begin(), spec.groups[g].members.end(),
            [&path_up](std::size_t m) { return path_up[m] != 0; });
        if (up) out[p].groups[g] += 1.0;
      }
    }
  }
  for (SampledPair& sp : out) {
    for (double& v : sp.paths) v /= static_cast<double>(samples);
    for (double& v : sp.groups) v /= static_cast<double>(samples);
  }
  return out;
}

TEST(Survivability, ZeroIntensityIsFullyAvailable) {
  const Network net = make_network();
  const std::vector<PairSpec> specs = make_specs(net, 6);
  ASSERT_FALSE(specs.empty());
  const FaultPlan plan{FaultConfig::at_intensity(0.0), net.topology(),
                       Duration::days(1)};
  const auto replayed = replay_survivability(net, plan, specs, {});
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  ASSERT_EQ(replayed.value().size(), specs.size());
  for (const PairSurvivability& pair : replayed.value()) {
    for (const PathAvailability& path : pair.paths) {
      EXPECT_DOUBLE_EQ(path.availability, 1.0) << path.label;
      EXPECT_EQ(path.outages, 0);
      EXPECT_DOUBLE_EQ(path.downtime.total_seconds(), 0.0);
    }
    for (const PathAvailability& group : pair.groups) {
      EXPECT_DOUBLE_EQ(group.availability, 1.0) << group.label;
      EXPECT_EQ(group.outages, 0);
    }
  }
}

TEST(Survivability, WindowlessPlanIsRejected) {
  const Network net = make_network();
  const std::vector<PairSpec> specs = make_specs(net, 1);
  ASSERT_FALSE(specs.empty());
  const FaultPlan windowless;  // no trace duration to replay over
  const auto replayed = replay_survivability(net, windowless, specs, {});
  ASSERT_FALSE(replayed.is_ok());
  EXPECT_EQ(replayed.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Survivability, MalformedSpecsAreRejected) {
  const Network net = make_network();
  const FaultPlan plan{FaultConfig::at_intensity(0.0), net.topology(),
                       Duration::days(1)};
  const topo::HostId a = net.topology().hosts()[0].id;
  const topo::HostId b = net.topology().hosts()[1].id;

  PairSpec one_hop;
  one_hop.paths.push_back({"stub", {a}});
  const auto short_path = replay_survivability(net, plan, {one_hop}, {});
  ASSERT_FALSE(short_path.is_ok());
  EXPECT_EQ(short_path.status().code(), ErrorCode::kInvalidArgument);

  PairSpec bad_member;
  bad_member.paths.push_back({"direct", {a, b}});
  bad_member.groups.push_back({"oops", {0, 7}});
  const auto out_of_range = replay_survivability(net, plan, {bad_member}, {});
  ASSERT_FALSE(out_of_range.is_ok());
  EXPECT_EQ(out_of_range.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Survivability, FaultsProduceBoundedAvailability) {
  const Network net = make_network();
  const std::vector<PairSpec> specs = make_specs(net, 8);
  ASSERT_FALSE(specs.empty());
  const Duration trace = Duration::days(2);
  const FaultPlan plan{FaultConfig::at_intensity(1.0), net.topology(), trace};
  const auto replayed = replay_survivability(net, plan, specs, {});
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
  double min_availability = 1.0;
  for (const PairSurvivability& pair : replayed.value()) {
    double best_member = 0.0;
    for (const PathAvailability& path : pair.paths) {
      EXPECT_GE(path.availability, 0.0);
      EXPECT_LE(path.availability, 1.0);
      EXPECT_LE(path.downtime.total_seconds(), trace.total_seconds());
      EXPECT_NEAR(path.availability,
                  1.0 - path.downtime.total_seconds() / trace.total_seconds(),
                  1e-9);
      if (path.availability < 1.0) {
        EXPECT_GT(path.outages, 0);
      }
      best_member = std::max(best_member, path.availability);
      min_availability = std::min(min_availability, path.availability);
    }
    // A group is up whenever any member is: never worse than its best member.
    for (const PathAvailability& group : pair.groups) {
      EXPECT_GE(group.availability, best_member - 1e-12);
    }
  }
  // Full intensity crashes every host at some point; something must go down.
  EXPECT_LT(min_availability, 1.0);
}

TEST(Survivability, MatchesDenseTimeSampling) {
  const Network net = make_network();
  const std::vector<PairSpec> specs = make_specs(net, 5);
  ASSERT_FALSE(specs.empty());
  const Duration trace = Duration::days(1);
  const FaultPlan plan{FaultConfig::at_intensity(0.5), net.topology(), trace};
  const auto replayed = replay_survivability(net, plan, specs, {});
  ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();

  // 30 s grid: sampling error is at most one grid step per state boundary,
  // and fault windows have multi-minute floors, so 2% headroom is ample.
  const std::vector<SampledPair> sampled =
      sample_availability(net, plan, specs, Duration::seconds(30));
  for (std::size_t p = 0; p < specs.size(); ++p) {
    const PairSurvivability& exact = replayed.value()[p];
    for (std::size_t i = 0; i < exact.paths.size(); ++i) {
      EXPECT_NEAR(exact.paths[i].availability, sampled[p].paths[i], 0.02)
          << "pair " << p << " path " << exact.paths[i].label;
    }
    for (std::size_t g = 0; g < exact.groups.size(); ++g) {
      EXPECT_NEAR(exact.groups[g].availability, sampled[p].groups[g], 0.02)
          << "pair " << p << " group " << exact.groups[g].label;
    }
  }
}

TEST(SurvivabilityThreadInvariance, BitIdenticalAcrossThreadCounts) {
  const Network net = make_network();
  const std::vector<PairSpec> specs = make_specs(net, 12);
  ASSERT_GT(specs.size(), 8u);
  const FaultPlan plan{FaultConfig::at_intensity(0.5), net.topology(),
                       Duration::days(1)};
  std::vector<std::vector<PairSurvivability>> runs;
  for (const int threads : {1, 4, 8}) {
    SurvivabilityOptions options;
    options.threads = threads;
    const auto replayed = replay_survivability(net, plan, specs, options);
    ASSERT_TRUE(replayed.is_ok()) << replayed.status().to_string();
    runs.push_back(replayed.value());
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t p = 0; p < runs[0].size(); ++p) {
      const PairSurvivability& x = runs[0][p];
      const PairSurvivability& y = runs[run][p];
      ASSERT_EQ(x.paths.size(), y.paths.size());
      for (std::size_t i = 0; i < x.paths.size(); ++i) {
        // Bitwise equality: determinism is the contract, not tolerance.
        EXPECT_EQ(x.paths[i].availability, y.paths[i].availability);
        EXPECT_EQ(x.paths[i].outages, y.paths[i].outages);
      }
      ASSERT_EQ(x.groups.size(), y.groups.size());
      for (std::size_t g = 0; g < x.groups.size(); ++g) {
        EXPECT_EQ(x.groups[g].availability, y.groups[g].availability);
        EXPECT_EQ(x.groups[g].outages, y.groups[g].outages);
      }
    }
  }
}

TEST(SurvivabilityCancel, TrippedTokenSurfacesStatus) {
  const Network net = make_network();
  const std::vector<PairSpec> specs = make_specs(net, 6);
  ASSERT_FALSE(specs.empty());
  const FaultPlan plan{FaultConfig::at_intensity(0.5), net.topology(),
                       Duration::days(1)};
  CancelToken token;
  token.cancel();
  SurvivabilityOptions options;
  options.cancel = &token;
  const auto replayed = replay_survivability(net, plan, specs, options);
  ASSERT_FALSE(replayed.is_ok());
  EXPECT_EQ(replayed.status().code(), ErrorCode::kCancelled);
}

}  // namespace
}  // namespace pathsel::sim
