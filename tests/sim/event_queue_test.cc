#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace pathsel::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::at(Duration::seconds(3)), [&](SimTime) { order.push_back(3); });
  q.schedule_at(SimTime::at(Duration::seconds(1)), [&](SimTime) { order.push_back(1); });
  q.schedule_at(SimTime::at(Duration::seconds(2)), [&](SimTime) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = SimTime::at(Duration::seconds(5));
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(t, [&order, i](SimTime) { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(SimTime::at(Duration::seconds(7)), [&](SimTime t) { seen = t; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(seen, SimTime::at(Duration::seconds(7)));
  EXPECT_EQ(q.now(), SimTime::at(Duration::seconds(7)));
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, CallbackCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void(SimTime)> chain = [&](SimTime) {
    if (++fired < 5) q.schedule_after(Duration::seconds(1), chain);
  };
  q.schedule_at(SimTime::start(), chain);
  q.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), SimTime::at(Duration::seconds(4)));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule_at(SimTime::at(Duration::seconds(i)), [&](SimTime) { ++fired; });
  }
  q.run_until(SimTime::at(Duration::seconds(5)));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.pending(), 5u);
  EXPECT_EQ(q.now(), SimTime::at(Duration::seconds(5)));
}

TEST(EventQueue, RunUntilIncludesBoundary) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(SimTime::at(Duration::seconds(5)), [&](SimTime) { fired = true; });
  q.run_until(SimTime::at(Duration::seconds(5)));
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime when;
  q.schedule_at(SimTime::at(Duration::seconds(10)), [&](SimTime) {
    q.schedule_after(Duration::seconds(5), [&](SimTime t) { when = t; });
  });
  q.run_all();
  EXPECT_EQ(when, SimTime::at(Duration::seconds(15)));
}

TEST(EventQueue, SchedulingInThePastAborts) {
  EventQueue q;
  q.schedule_at(SimTime::at(Duration::seconds(10)), [](SimTime) {});
  q.run_all();
  EXPECT_DEATH(q.schedule_at(SimTime::at(Duration::seconds(5)), [](SimTime) {}),
               "past");
}

TEST(EventQueue, EmptyAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule_at(SimTime::start(), [](SimTime) {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace pathsel::sim
