// Serve engine tests.  The load-bearing property is the differential: the
// incrementally maintained, snapshot-served answers must be BYTE-identical
// (serialize_result_columns) to a from-scratch batch analyze of the
// post-update graph — at every reader-thread count and across journal
// replay boundaries.  The robustness suite then pins graceful degradation:
// rejections change nothing, overload sheds deterministically, staleness is
// flagged, and per-query deadline budgets fire.
#include "serve/engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/alternate.h"
#include "core/confidence.h"
#include "core/result_columns.h"
#include "serve/journal.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "util/atomic_io.h"
#include "util/metrics.h"

namespace pathsel::serve {
namespace {

// Full mesh over 6 hosts except the (4, 5) pair, which stays unmeasured so
// kNoPair has a target.  Distinct RTTs so arg-min relays are unambiguous;
// a lost sample per pair so loss summaries are non-degenerate.
meas::Dataset mesh_dataset() {
  meas::Dataset ds = test::make_dataset(6);
  double rtt = 10.0;
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      if (a == 4 && b == 5) continue;
      test::add_invocations(ds, a, b, rtt, 3);
      test::add_invocation(ds, a, b, {rtt, rtt + 2.0, -1.0});
      rtt += 7.0;
    }
  }
  return ds;
}

EdgeUpdate update(int a, int b, double rtt, bool lost = false) {
  EdgeUpdate u;
  u.a = topo::HostId{a};
  u.b = topo::HostId{b};
  u.rtt_ms = rtt;
  u.lost = lost;
  return u;
}

ServeOptions base_options() {
  ServeOptions o;
  o.build = test::min_samples(3);
  o.threads = 1;
  return o;
}

// The ground truth: apply the updates to a freshly built table exactly as
// the engine does, then run the full batch pipeline the serve path claims
// byte-identity with.
std::vector<core::ResultColumns> batch_reference(
    const meas::Dataset& ds, const std::vector<EdgeUpdate>& updates) {
  core::PathTable table = core::PathTable::build(ds, test::min_samples(3));
  for (const EdgeUpdate& u : updates) {
    core::PathEdge* e = table.find_mutable(u.a, u.b);
    EXPECT_NE(e, nullptr);
    e->loss.add(u.lost ? 1.0 : 0.0);
    if (!u.lost) e->rtt.add(u.rtt_ms);
    ++e->invocations;
  }
  std::vector<core::ResultColumns> out;
  for (const core::Metric metric : {core::Metric::kRtt, core::Metric::kLoss}) {
    core::AnalyzerOptions analyzer;
    analyzer.metric = metric;
    analyzer.max_intermediate_hosts = 1;
    analyzer.threads = 1;
    const Result<std::vector<core::PairResult>> pairs =
        core::analyze_alternate_paths_checked(table, analyzer);
    EXPECT_TRUE(pairs.is_ok());
    core::ResultColumns cols = core::from_pairs(pairs.value(), metric);
    EXPECT_TRUE(core::annotate_significance(cols, 0.95, 1).is_ok());
    out.push_back(std::move(cols));
  }
  return out;
}

std::string served_bytes(ServeEngine& engine) {
  const SnapshotBoard::Pin pin = engine.pin(0);
  const std::vector<core::ResultColumns> sets{pin->rtt, pin->loss};
  return core::serialize_result_columns(sets);
}

std::vector<EdgeUpdate> mixed_updates() {
  return {
      update(0, 1, 3.5),           update(0, 1, 250.0),
      update(0, 1, 40.0, true),    update(2, 3, 1.0),
      update(2, 3, 1.0),           update(1, 4, 500.0, true),
      update(1, 4, 500.0, true),   update(0, 5, 77.25),
      update(3, 5, 0.125),         update(2, 4, 62.0),
  };
}

TEST(ServeDifferential, InitialSnapshotMatchesBatch) {
  const meas::Dataset ds = mesh_dataset();
  Result<std::unique_ptr<ServeEngine>> engine =
      ServeEngine::create(ds, base_options());
  ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
  EXPECT_EQ(served_bytes(*engine.value()),
            core::serialize_result_columns(batch_reference(ds, {})));
}

TEST(ServeDifferential, ServedColumnsMatchBatchRebuildAfterUpdates) {
  const meas::Dataset ds = mesh_dataset();
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(ds, base_options());
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();

  const std::vector<EdgeUpdate> updates = mixed_updates();
  // Split across two flushes: intermediate snapshots must also be coherent.
  for (std::size_t i = 0; i < updates.size(); ++i) {
    ASSERT_TRUE(engine.submit(updates[i]).is_ok());
    if (i == updates.size() / 2) {
      ASSERT_TRUE(engine.flush().is_ok());
    }
  }
  ASSERT_TRUE(engine.flush().is_ok());

  EXPECT_EQ(served_bytes(engine),
            core::serialize_result_columns(batch_reference(ds, updates)));
  const ServeCounters c = engine.counters();
  EXPECT_EQ(c.updates_accepted, updates.size());
  EXPECT_EQ(c.updates_applied, updates.size());
  EXPECT_EQ(c.updates_shed, 0u);
  EXPECT_EQ(c.snapshots_published, 3u);  // initial + two flushes
  EXPECT_EQ(engine.last_seq(), updates.size());
}

TEST(ServeDifferential, ReaderThreadsSeeIdenticalAnswers) {
  const meas::Dataset ds = mesh_dataset();
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(ds, base_options());
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();
  for (const EdgeUpdate& u : mixed_updates()) {
    ASSERT_TRUE(engine.submit(u).is_ok());
  }
  ASSERT_TRUE(engine.flush().is_ok());

  const std::vector<core::ResultColumns> ref =
      batch_reference(ds, mixed_updates());
  for (const int threads : {1, 4, 8}) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < ref[0].size();
             i += static_cast<std::size_t>(threads)) {
          for (std::size_t m = 0; m < 2; ++m) {
            const core::Metric metric =
                m == 0 ? core::Metric::kRtt : core::Metric::kLoss;
            const BestResponse r = engine.query_best(
                metric, topo::HostId{ref[m].src[i]}, topo::HostId{ref[m].dst[i]},
                static_cast<std::size_t>(t));
            // Bit-compare every served field against the batch columns.
            if (r.kind != BestResponse::Kind::kOk ||
                r.direct != ref[m].default_value[i] ||
                r.alternate != ref[m].alternate_value[i] ||
                r.relay != ref[m].relay[i] ||
                static_cast<std::int8_t>(r.significance) !=
                    ref[m].significance[i]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(mismatches.load(), 0) << "at " << threads << " reader threads";
  }
}

TEST(ServeDifferential, ReplayAfterRestartMatchesUninterruptedRun) {
  const meas::Dataset ds = mesh_dataset();
  const std::string dir = ::testing::TempDir() + "/serve_replay_jdir";
  const std::vector<EdgeUpdate> updates = mixed_updates();

  std::string before;
  {
    ServeOptions options = base_options();
    options.journal_dir = dir;
    Result<std::unique_ptr<ServeEngine>> created =
        ServeEngine::create(ds, options);
    ASSERT_TRUE(created.is_ok()) << created.status().to_string();
    for (const EdgeUpdate& u : updates) {
      ASSERT_TRUE(created.value()->submit(u).is_ok());
    }
    ASSERT_TRUE(created.value()->flush().is_ok());
    before = served_bytes(*created.value());
  }  // no clean shutdown beyond the journal: recovery rebuilds from it

  ServeOptions options = base_options();
  options.journal_dir = dir;
  options.resume = true;
  Result<std::unique_ptr<ServeEngine>> resumed =
      ServeEngine::create(ds, options);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value()->last_seq(), updates.size());
  EXPECT_EQ(resumed.value()->counters().updates_replayed, updates.size());
  EXPECT_EQ(served_bytes(*resumed.value()), before);
  EXPECT_EQ(before,
            core::serialize_result_columns(batch_reference(ds, updates)));
}

TEST(ServeDifferential, TornJournalTailIsTruncatedAndReplayStillConverges) {
  const meas::Dataset ds = mesh_dataset();
  const std::string dir = ::testing::TempDir() + "/serve_torn_jdir";
  const std::vector<EdgeUpdate> updates = {update(0, 1, 5.0),
                                           update(2, 3, 9.0, true)};
  {
    ServeOptions options = base_options();
    options.journal_dir = dir;
    Result<std::unique_ptr<ServeEngine>> created =
        ServeEngine::create(ds, options);
    ASSERT_TRUE(created.is_ok());
    for (const EdgeUpdate& u : updates) {
      ASSERT_TRUE(created.value()->submit(u).is_ok());
    }
    ASSERT_TRUE(created.value()->flush().is_ok());
  }
  {  // Tear the tail: a half-written third record left by a "crash".
    FILE* f = std::fopen((dir + "/journal.0").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("\x07\x00\x00\x00garbage", f);
    std::fclose(f);
  }

  ServeOptions options = base_options();
  options.journal_dir = dir;
  options.resume = true;
  Result<std::unique_ptr<ServeEngine>> resumed =
      ServeEngine::create(ds, options);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value()->counters().journal_truncations, 1u);
  bool logged = false;
  for (const std::string& line : resumed.value()->recovery_log()) {
    if (line.find("truncated torn tail") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
  EXPECT_EQ(served_bytes(*resumed.value()),
            core::serialize_result_columns(batch_reference(ds, updates)));

  // The repaired journal must accept appends again and carry them forward.
  ASSERT_TRUE(resumed.value()->submit(update(0, 2, 123.0)).is_ok());
  ASSERT_TRUE(resumed.value()->flush().is_ok());
  EXPECT_EQ(resumed.value()->last_seq(), 3u);
}

TEST(ServeJournaling, CompactionBoundsReplayAndRotatesGenerations) {
  const meas::Dataset ds = mesh_dataset();
  const std::string dir = ::testing::TempDir() + "/serve_compact_jdir";
  std::vector<EdgeUpdate> updates;
  {
    ServeOptions options = base_options();
    options.journal_dir = dir;
    options.compact_every = 2;
    Result<std::unique_ptr<ServeEngine>> created =
        ServeEngine::create(ds, options);
    ASSERT_TRUE(created.is_ok());
    for (int i = 0; i < 5; ++i) {
      const EdgeUpdate u = update(0, 1, 10.0 + i);
      updates.push_back(u);
      ASSERT_TRUE(created.value()->submit(u).is_ok());
      ASSERT_TRUE(created.value()->flush().is_ok());
    }
    EXPECT_EQ(created.value()->counters().compactions, 2u);
  }
  // Generations 1 and 2 exist (journal.1 and journal.0); the state snapshot
  // holds seq 4, so recovery replays only the single update after it.
  ASSERT_TRUE(::access((dir + "/state").c_str(), F_OK) == 0);
  ASSERT_TRUE(::access((dir + "/journal.1").c_str(), F_OK) == 0);

  ServeOptions options = base_options();
  options.journal_dir = dir;
  options.resume = true;
  Result<std::unique_ptr<ServeEngine>> resumed =
      ServeEngine::create(ds, options);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value()->last_seq(), 5u);
  EXPECT_EQ(resumed.value()->counters().updates_replayed, 1u);
  bool restored = false;
  for (const std::string& line : resumed.value()->recovery_log()) {
    if (line.find("restored state snapshot at seq 4") != std::string::npos) {
      restored = true;
    }
  }
  EXPECT_TRUE(restored);
  EXPECT_EQ(served_bytes(*resumed.value()),
            core::serialize_result_columns(batch_reference(ds, updates)));
}

TEST(ServeJournaling, ForeignJournalIsRefusedNotReplayed) {
  const std::string dir = ::testing::TempDir() + "/serve_foreign_jdir";
  const meas::Dataset ds = mesh_dataset();
  {
    ServeOptions options = base_options();
    options.journal_dir = dir;
    Result<std::unique_ptr<ServeEngine>> created =
        ServeEngine::create(ds, options);
    ASSERT_TRUE(created.is_ok());
    ASSERT_TRUE(created.value()->submit(update(0, 1, 5.0)).is_ok());
    ASSERT_TRUE(created.value()->flush().is_ok());
  }

  // Same directory, different dataset: the fingerprint must refuse it.
  meas::Dataset other = mesh_dataset();
  test::add_invocations(other, 0, 1, 999.0, 3);
  ServeOptions options = base_options();
  options.journal_dir = dir;
  options.resume = true;
  const Result<std::unique_ptr<ServeEngine>> resumed =
      ServeEngine::create(other, options);
  ASSERT_FALSE(resumed.is_ok());
  EXPECT_NE(resumed.status().message().find("unusable"), std::string::npos)
      << resumed.status().to_string();
}

TEST(ServeJournaling, JournalRecordForUnmeasuredPairFailsRecovery) {
  const std::string dir = ::testing::TempDir() + "/serve_badrec_jdir";
  ASSERT_TRUE(ensure_directory(dir).is_ok());
  const meas::Dataset ds = mesh_dataset();
  const std::uint64_t fp = ServeEngine::compute_fingerprint(ds, 3);
  JournalRecord bad;
  bad.seq = 1;
  bad.update = update(4, 5, 1.0);  // hosts known, pair unmeasured
  ASSERT_TRUE(write_file_atomic(dir + "/journal.0",
                                serialize_journal_header(fp, 0, 1) +
                                    serialize_journal_record(bad))
                  .is_ok());

  ServeOptions options = base_options();
  options.journal_dir = dir;
  options.resume = true;
  const Result<std::unique_ptr<ServeEngine>> resumed =
      ServeEngine::create(ds, options);
  ASSERT_FALSE(resumed.is_ok());
  EXPECT_NE(resumed.status().message().find("unmeasured pair"),
            std::string::npos);
}

TEST(ServeRobustness, RejectionsAreExplainedAndLeaveServedBytesUntouched) {
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(mesh_dataset(), base_options());
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();
  const std::string before = served_bytes(engine);

  const struct {
    EdgeUpdate u;
    const char* needle;
  } cases[] = {
      {update(0, 99, 5.0), "not in the served dataset"},
      {update(99, 1, 5.0), "not in the served dataset"},
      {update(2, 2, 5.0), "two distinct hosts"},
      {update(4, 5, 5.0), "unmeasured or filtered out"},
      {update(0, 1, -1.0), "finite non-negative"},
      {update(0, 1, std::numeric_limits<double>::quiet_NaN()), "finite"},
      {update(0, 1, std::numeric_limits<double>::infinity()), "finite"},
  };
  for (const auto& c : cases) {
    const Status s = engine.submit(c.u);
    ASSERT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(s.message().find(c.needle), std::string::npos)
        << s.to_string();
  }
  ASSERT_TRUE(engine.flush().is_ok());  // nothing queued: no publish either

  EXPECT_EQ(served_bytes(engine), before);
  const ServeCounters c = engine.counters();
  EXPECT_EQ(c.updates_rejected, std::size(cases));
  EXPECT_EQ(c.updates_accepted, 0u);
  EXPECT_EQ(c.snapshots_published, 1u);
}

TEST(ServeRobustness, OverloadShedsTheOldestUpdatesDeterministically) {
  const meas::Dataset ds = mesh_dataset();
  ServeOptions options = base_options();
  options.queue_capacity = 2;
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(ds, options);
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();

  const std::vector<EdgeUpdate> all = {update(0, 1, 1.0), update(0, 2, 2.0),
                                       update(0, 3, 3.0), update(1, 2, 4.0)};
  for (const EdgeUpdate& u : all) ASSERT_TRUE(engine.submit(u).is_ok());
  ASSERT_TRUE(engine.flush().is_ok());

  const ServeCounters c = engine.counters();
  EXPECT_EQ(c.updates_shed, 2u);
  EXPECT_EQ(c.updates_applied, 2u);
  // Freshest-wins: only the LAST two submissions survive the bounded queue.
  EXPECT_EQ(served_bytes(engine),
            core::serialize_result_columns(
                batch_reference(ds, {all[2], all[3]})));
}

TEST(ServeRobustness, StaleSnapshotsAreFlaggedWithTheirAge) {
  ServeOptions options = base_options();
  options.stale_after_ms = 100;
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(mesh_dataset(), options);
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();

  BestResponse fresh =
      engine.query_best(core::Metric::kRtt, topo::HostId{0}, topo::HostId{1}, 0);
  EXPECT_FALSE(fresh.meta.stale);
  EXPECT_EQ(fresh.meta.age_ms, 0);

  engine.advance_clock(100);
  EXPECT_FALSE(engine
                   .query_best(core::Metric::kRtt, topo::HostId{0},
                               topo::HostId{1}, 0)
                   .meta.stale);  // exactly at the threshold: not yet stale
  engine.advance_clock(1);
  const BestResponse stale =
      engine.query_best(core::Metric::kRtt, topo::HostId{0}, topo::HostId{1}, 0);
  EXPECT_TRUE(stale.meta.stale);
  EXPECT_EQ(stale.meta.age_ms, 101);
  EXPECT_EQ(stale.kind, BestResponse::Kind::kOk);  // stale is served, flagged
  EXPECT_EQ(engine.counters().stale_served, 1u);

  // A publish resets the age: submit + flush, and the flag clears.
  ASSERT_TRUE(engine.submit(update(0, 1, 9.0)).is_ok());
  ASSERT_TRUE(engine.flush().is_ok());
  EXPECT_FALSE(engine
                   .query_best(core::Metric::kRtt, topo::HostId{0},
                               topo::HostId{1}, 0)
                   .meta.stale);
}

TEST(ServeRobustness, QueryKindsCoverTheErrorSurface) {
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(mesh_dataset(), base_options());
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();

  EXPECT_EQ(engine.query_best(core::Metric::kRtt, topo::HostId{0},
                              topo::HostId{42}, 0)
                .kind,
            BestResponse::Kind::kUnknownHost);
  EXPECT_EQ(engine.query_best(core::Metric::kRtt, topo::HostId{4},
                              topo::HostId{5}, 0)
                .kind,
            BestResponse::Kind::kNoPair);
  // Reversed host order answers the same row.
  const BestResponse fwd =
      engine.query_best(core::Metric::kRtt, topo::HostId{0}, topo::HostId{1}, 0);
  const BestResponse rev =
      engine.query_best(core::Metric::kRtt, topo::HostId{1}, topo::HostId{0}, 0);
  EXPECT_EQ(fwd.kind, BestResponse::Kind::kOk);
  EXPECT_EQ(fwd.alternate, rev.alternate);
  EXPECT_EQ(fwd.relay, rev.relay);

  EXPECT_EQ(engine
                .query_disjoint(core::Metric::kRtt, 0, topo::HostId{0},
                                topo::HostId{1}, 0, -1.0)
                .kind,
            DisjointResponse::Kind::kInvalidK);
  EXPECT_EQ(engine
                .query_disjoint(core::Metric::kRtt, 2, topo::HostId{0},
                                topo::HostId{42}, 0, -1.0)
                .kind,
            DisjointResponse::Kind::kUnknownHost);
  // A zero budget trips the token before any sweep work: deterministic
  // deadline, counted as a timeout.
  EXPECT_EQ(engine
                .query_disjoint(core::Metric::kRtt, 2, topo::HostId{0},
                                topo::HostId{1}, 0, 0.0)
                .kind,
            DisjointResponse::Kind::kDeadline);
  EXPECT_EQ(engine.counters().query_timeouts, 1u);

  const DisjointResponse ok = engine.query_disjoint(
      core::Metric::kRtt, 2, topo::HostId{0}, topo::HostId{1}, 0, -1.0);
  EXPECT_EQ(ok.kind, DisjointResponse::Kind::kOk);
  EXPECT_FALSE(ok.result.paths.empty());
}

TEST(ServeRobustness, PairWithNoAlternateStillServesTheDirectPath) {
  // Two hosts, one pair: removing the only edge disconnects it, so the row
  // set is empty — but the direct path must still be answerable.
  meas::Dataset ds = test::make_dataset(2);
  test::add_invocations(ds, 0, 1, 25.0, 3);
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(ds, base_options());
  ASSERT_TRUE(created.is_ok());
  const BestResponse r = created.value()->query_best(
      core::Metric::kRtt, topo::HostId{0}, topo::HostId{1}, 0);
  EXPECT_EQ(r.kind, BestResponse::Kind::kNoAlternate);
  EXPECT_EQ(r.direct, 25.0);
}

TEST(ServeRobustness, MetricsSyncEmitsExactCounterDeltas) {
  MetricsRegistry::global().enable();
  MetricsRegistry::global().reset();
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(mesh_dataset(), base_options());
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();
  ASSERT_TRUE(engine.submit(update(0, 1, 5.0)).is_ok());
  ASSERT_FALSE(engine.submit(update(0, 99, 5.0)).is_ok());
  ASSERT_TRUE(engine.flush().is_ok());
  (void)engine.query_best(core::Metric::kRtt, topo::HostId{0}, topo::HostId{1},
                          0);
  engine.sync_metrics();
  engine.sync_metrics();  // second sync: no deltas, counters must not double

  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    return 0;
  };
  EXPECT_EQ(counter("core.serve.updates.accepted"), 1u);
  EXPECT_EQ(counter("core.serve.updates.rejected"), 1u);
  EXPECT_EQ(counter("core.serve.updates.applied"), 1u);
  EXPECT_EQ(counter("core.serve.queries.best"), 1u);
  EXPECT_EQ(counter("core.serve.snapshots.published"), 2u);
  MetricsRegistry::global().reset();
}

// ---- SnapshotBoard -------------------------------------------------------

std::unique_ptr<const ServeSnapshot> snapshot_with_seq(std::uint64_t seq) {
  auto s = std::make_unique<ServeSnapshot>();
  s->seq = seq;
  return s;
}

TEST(ServeSnapshotBoard, PinKeepsRetiredSnapshotsAliveUntilRelease) {
  SnapshotBoard board{2};
  board.publish(snapshot_with_seq(1));
  {
    const SnapshotBoard::Pin pin = board.pin(0);
    EXPECT_EQ(pin->seq, 1u);
    board.publish(snapshot_with_seq(2));
    // The pinned snapshot survived the publish: still readable, and the
    // writer is holding it on the retired list instead of freeing it.
    EXPECT_EQ(pin->seq, 1u);
    EXPECT_EQ(board.retired_count(), 1u);
    // A fresh pin on another slot sees the new snapshot.
    EXPECT_EQ(board.pin(1)->seq, 2u);
  }
  // Released: the next publish reclaims both retired snapshots.
  board.publish(snapshot_with_seq(3));
  EXPECT_EQ(board.retired_count(), 0u);
  EXPECT_EQ(board.pin(0)->seq, 3u);
}

TEST(ServeSnapshotBoard, MovedPinTransfersOwnership) {
  SnapshotBoard board{1};
  board.publish(snapshot_with_seq(7));
  SnapshotBoard::Pin a = board.pin(0);
  const SnapshotBoard::Pin b = std::move(a);
  EXPECT_EQ(a.get(), nullptr);  // NOLINT(bugprone-use-after-move): spec check
  EXPECT_EQ(b->seq, 7u);
}

TEST(ServeSnapshotBoard, ConcurrentReadersNeverSeeAFreedSnapshot) {
  // Race harness for TSan/ASan: readers pin and dereference while the
  // writer publishes as fast as it can.  Sequence numbers must be
  // monotonically non-decreasing per reader; any use-after-free trips the
  // sanitizers.
  constexpr std::size_t kReaders = 4;
  constexpr std::uint64_t kPublishes = 2000;
  SnapshotBoard board{kReaders};
  board.publish(snapshot_with_seq(0));

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t slot = 0; slot < kReaders; ++slot) {
    readers.emplace_back([&, slot] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotBoard::Pin pin = board.pin(slot);
        const std::uint64_t seq = pin->seq;
        if (seq < last || seq > kPublishes) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        last = seq;
      }
    });
  }
  for (std::uint64_t seq = 1; seq <= kPublishes; ++seq) {
    board.publish(snapshot_with_seq(seq));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(board.pin(0)->seq, kPublishes);
}

TEST(ServeEngineConcurrency, ReadersRaceTheWriterWithoutTearing) {
  // End-to-end race harness: four reader threads hammer queries (distinct
  // slots) while the writer thread applies updates and republishes.  Every
  // response must be internally coherent: an Ok answer carries a positive
  // alternate and a real relay.  Run under TSan via the Serve regex.
  const meas::Dataset ds = mesh_dataset();
  Result<std::unique_ptr<ServeEngine>> created =
      ServeEngine::create(ds, base_options());
  ASSERT_TRUE(created.is_ok());
  ServeEngine& engine = *created.value();

  const std::vector<core::ResultColumns> ref = batch_reference(ds, {});
  std::atomic<bool> stop{false};
  std::atomic<int> incoherent{0};
  std::vector<std::thread> readers;
  for (std::size_t slot = 0; slot < 4; ++slot) {
    readers.emplace_back([&, slot] {
      std::uint64_t last_seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (std::size_t i = 0; i < ref[0].size(); ++i) {
          const BestResponse r =
              engine.query_best(core::Metric::kRtt, topo::HostId{ref[0].src[i]},
                                topo::HostId{ref[0].dst[i]}, slot);
          if (r.kind != BestResponse::Kind::kOk || r.alternate <= 0.0 ||
              r.relay == core::kNoRelay || r.meta.seq < last_seq) {
            incoherent.fetch_add(1, std::memory_order_relaxed);
          }
          last_seq = r.meta.seq;
        }
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(engine.submit(update(0, 1, 10.0 + round)).is_ok());
    ASSERT_TRUE(engine.submit(update(2, 3, 20.0 + round, round % 2 == 0))
                    .is_ok());
    ASSERT_TRUE(engine.flush().is_ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(incoherent.load(), 0);
  EXPECT_EQ(engine.counters().snapshots_published, 51u);
}

}  // namespace
}  // namespace pathsel::serve
