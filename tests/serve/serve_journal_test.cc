// Journal format unit tests: framing round-trips, torn-tail and corruption
// handling, the textual update grammar, and the compacted state snapshot.
// The contract throughout: malformed bytes are *described*, never parsed
// into state and never fatal beyond the torn suffix.
#include "serve/journal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/path_table.h"
#include "test_util.h"
#include "util/atomic_io.h"

namespace pathsel::serve {
namespace {

constexpr std::uint64_t kPrint = 0xABCD1234DEADBEEF;  // arbitrary fingerprint

JournalRecord make_record(std::uint64_t seq, int a, int b, double rtt,
                          bool lost) {
  JournalRecord r;
  r.seq = seq;
  r.update.a = topo::HostId{a};
  r.update.b = topo::HostId{b};
  r.update.rtt_ms = rtt;
  r.update.lost = lost;
  return r;
}

std::string journal_bytes(std::uint64_t fingerprint,
                          const std::vector<JournalRecord>& records,
                          std::uint64_t generation = 0,
                          std::uint64_t start_seq = 1) {
  std::string bytes =
      serialize_journal_header(fingerprint, generation, start_seq);
  for (const JournalRecord& r : records) bytes += serialize_journal_record(r);
  return bytes;
}

TEST(ServeJournalFormat, HeaderIsFixedSizeAndScans) {
  const std::string header = serialize_journal_header(kPrint, 7, 42);
  EXPECT_EQ(header.size(), kJournalHeaderBytes);
  const JournalScan scan = scan_journal(header, kPrint);
  EXPECT_TRUE(scan.usable);
  EXPECT_EQ(scan.generation, 7u);
  EXPECT_EQ(scan.start_seq, 42u);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, kJournalHeaderBytes);
}

TEST(ServeJournalFormat, RecordsRoundTripExactly) {
  const std::vector<JournalRecord> in = {
      make_record(1, 3, 9, 12.5, false),
      make_record(2, 0, 1, 0.0, true),
      // A bit pattern that would not survive a text round-trip.
      make_record(3, 100, 2000000, 0.1 + 0.2, false),
  };
  const JournalScan scan = scan_journal(journal_bytes(kPrint, in), kPrint);
  ASSERT_TRUE(scan.usable);
  ASSERT_EQ(scan.records.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, in[i].seq);
    EXPECT_EQ(scan.records[i].update.a, in[i].update.a);
    EXPECT_EQ(scan.records[i].update.b, in[i].update.b);
    // Bit-exact doubles: the journal stores the IEEE pattern, not text.
    EXPECT_EQ(scan.records[i].update.rtt_ms, in[i].update.rtt_ms);
    EXPECT_EQ(scan.records[i].update.lost, in[i].update.lost);
  }
  EXPECT_FALSE(scan.truncated);
}

TEST(ServeJournalScan, RejectsForeignFingerprint) {
  const std::string bytes =
      journal_bytes(kPrint, {make_record(1, 0, 1, 5.0, false)});
  const JournalScan scan = scan_journal(bytes, kPrint + 1);
  EXPECT_FALSE(scan.usable);
  EXPECT_NE(scan.reject_reason.find("fingerprint"), std::string::npos)
      << scan.reject_reason;
}

TEST(ServeJournalScan, RejectsBadMagicAndShortHeader) {
  EXPECT_FALSE(scan_journal("", kPrint).usable);
  EXPECT_FALSE(scan_journal("PSJLxxxx", kPrint).usable);
  std::string bytes = journal_bytes(kPrint, {});
  bytes[0] = 'X';
  EXPECT_FALSE(scan_journal(bytes, kPrint).usable);
}

TEST(ServeJournalScan, RejectsCorruptHeaderCrc) {
  std::string bytes = journal_bytes(kPrint, {});
  bytes[20] = static_cast<char>(bytes[20] ^ 0x01);  // inside generation field
  const JournalScan scan = scan_journal(bytes, kPrint);
  EXPECT_FALSE(scan.usable);
}

TEST(ServeJournalScan, TornTailTruncatesToLastIntactRecord) {
  const std::vector<JournalRecord> in = {make_record(1, 0, 1, 5.0, false),
                                         make_record(2, 1, 2, 6.0, true)};
  const std::string whole = journal_bytes(kPrint, in);
  const std::size_t intact =
      kJournalHeaderBytes + (whole.size() - kJournalHeaderBytes) / 2;
  // Cut mid-record: the first record survives, the second is torn wear.
  const JournalScan scan = scan_journal(whole.substr(0, intact + 3), kPrint);
  ASSERT_TRUE(scan.usable);
  EXPECT_TRUE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.valid_bytes, intact);
  EXPECT_FALSE(scan.truncation_reason.empty());
}

TEST(ServeJournalScan, EverySingleBitFlipInARecordIsCaught) {
  const std::string whole =
      journal_bytes(kPrint, {make_record(1, 4, 7, 33.25, false)});
  for (std::size_t byte = kJournalHeaderBytes; byte < whole.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = whole;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      const JournalScan scan = scan_journal(corrupt, kPrint);
      ASSERT_TRUE(scan.usable);
      // Either the record is dropped (torn/corrupt) or — for flips in the
      // length field that still frame correctly — the CRC catches it.  No
      // flip may ever yield the original record *plus* anything else.
      EXPECT_TRUE(scan.truncated) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(scan.records.size(), 0u) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ServeJournalScan, SequenceBreakStopsTheScan) {
  const std::string bytes = journal_bytes(
      kPrint, {make_record(1, 0, 1, 5.0, false),
               make_record(5, 1, 2, 6.0, false)});  // gap: 1 then 5
  const JournalScan scan = scan_journal(bytes, kPrint);
  ASSERT_TRUE(scan.usable);
  EXPECT_TRUE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
}

TEST(ServeJournalParseUpdate, AcceptsTheGrammarAndNormalizesOrder) {
  const Result<EdgeUpdate> u = parse_update("sample 9 3 12.5 1");
  ASSERT_TRUE(u.is_ok()) << u.status().to_string();
  EXPECT_EQ(u.value().a.value(), 3);  // normalized a < b
  EXPECT_EQ(u.value().b.value(), 9);
  EXPECT_EQ(u.value().rtt_ms, 12.5);
  EXPECT_TRUE(u.value().lost);
}

TEST(ServeJournalParseUpdate, RejectsEveryMalformedFieldWithAReason) {
  for (const char* bad : {
           "",                        // empty
           "sample",                  // missing everything
           "probe 1 2 3.0 0",         // wrong keyword
           "sample 1 2 3.0",          // missing lost flag
           "sample 1 2 3.0 0 extra",  // trailing junk
           "sample x 2 3.0 0",        // non-numeric host
           "sample 1 2 fast 0",       // non-numeric rtt
           "sample 1 2 -3.0 0",       // negative rtt
           "sample 1 2 nan 0",        // non-finite rtt
           "sample 1 2 inf 0",        // non-finite rtt
           "sample 1 1 3.0 0",        // identical hosts
           "sample 1 2 3.0 2",        // lost not in {0,1}
       }) {
    const Result<EdgeUpdate> u = parse_update(bad);
    EXPECT_FALSE(u.is_ok()) << "accepted: " << bad;
    if (!u.is_ok()) {
      EXPECT_EQ(u.status().code(), ErrorCode::kInvalidArgument) << bad;
      EXPECT_FALSE(u.status().message().empty()) << bad;
    }
  }
}

// ---- State snapshot (PSSV) ----------------------------------------------

core::PathTable small_table() {
  meas::Dataset ds = test::make_dataset(3);
  test::add_invocations(ds, 0, 1, 10.0, 3);
  test::add_invocations(ds, 0, 2, 20.0, 3);
  test::add_invocations(ds, 1, 2, 30.0, 3);
  return core::PathTable::build(ds, test::min_samples(3));
}

TEST(ServeJournalState, CapturesAndRestoresMomentsBitExactly) {
  core::PathTable table = small_table();
  core::PathEdge* e = table.find_mutable(topo::HostId{0}, topo::HostId{1});
  ASSERT_NE(e, nullptr);
  e->rtt.add(99.5);
  e->loss.add(1.0);
  ++e->invocations;

  const ServeStateImage image = capture_serve_state(table, 17);
  EXPECT_EQ(image.seq, 17u);
  EXPECT_EQ(image.edges.size(), table.edges().size());

  // Restore into a freshly built (pre-update) table: every moment must land.
  core::PathTable fresh = small_table();
  ASSERT_TRUE(restore_serve_state(image, fresh).is_ok());
  const core::PathEdge* restored =
      fresh.find(topo::HostId{0}, topo::HostId{1});
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->rtt.raw().n, e->rtt.raw().n);
  EXPECT_EQ(restored->rtt.raw().mean, e->rtt.raw().mean);
  EXPECT_EQ(restored->rtt.raw().m2, e->rtt.raw().m2);
  EXPECT_EQ(restored->loss.raw().mean, e->loss.raw().mean);
  EXPECT_EQ(restored->invocations, e->invocations);
}

TEST(ServeJournalState, SerializedImageRoundTrips) {
  const core::PathTable table = small_table();
  const ServeStateImage image = capture_serve_state(table, 5);
  const std::string bytes = serialize_serve_state(image, kPrint);
  const Result<ServeStateImage> parsed = parse_serve_state(bytes, kPrint);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().seq, 5u);
  ASSERT_EQ(parsed.value().edges.size(), image.edges.size());
  for (std::size_t i = 0; i < image.edges.size(); ++i) {
    EXPECT_EQ(parsed.value().edges[i].a, image.edges[i].a);
    EXPECT_EQ(parsed.value().edges[i].b, image.edges[i].b);
    EXPECT_EQ(parsed.value().edges[i].rtt.mean, image.edges[i].rtt.mean);
    EXPECT_EQ(parsed.value().edges[i].loss.m2, image.edges[i].loss.m2);
  }
}

TEST(ServeJournalState, ParseRejectsCorruptionAndForeignFingerprints) {
  const core::PathTable table = small_table();
  const std::string bytes =
      serialize_serve_state(capture_serve_state(table, 5), kPrint);

  EXPECT_FALSE(parse_serve_state(bytes, kPrint + 1).is_ok());
  EXPECT_FALSE(parse_serve_state("", kPrint).is_ok());
  EXPECT_FALSE(parse_serve_state(bytes.substr(0, bytes.size() / 2), kPrint)
                   .is_ok());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string corrupt = bytes;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    EXPECT_FALSE(parse_serve_state(corrupt, kPrint).is_ok())
        << "bit flip at byte " << byte << " parsed";
  }
}

TEST(ServeJournalState, RestoreRejectsMismatchedEdgeSets) {
  const core::PathTable table = small_table();
  ServeStateImage image = capture_serve_state(table, 1);
  image.edges.pop_back();
  core::PathTable target = small_table();
  EXPECT_FALSE(restore_serve_state(image, target).is_ok());

  ServeStateImage renamed = capture_serve_state(table, 1);
  renamed.edges[0].a = 999;
  EXPECT_FALSE(restore_serve_state(renamed, target).is_ok());
}

// ---- JournalWriter -------------------------------------------------------

TEST(ServeJournalWriter, AppendsScanBackAndTornTailIsRepairedByOffset) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/psjl_writer_test.journal";
  ASSERT_TRUE(
      write_file_atomic(path, serialize_journal_header(kPrint, 0, 1)).is_ok());

  JournalWriter writer;
  ASSERT_TRUE(writer.open(path, kJournalHeaderBytes).is_ok());
  ASSERT_TRUE(writer.append(make_record(1, 0, 1, 5.0, false)).is_ok());
  ASSERT_TRUE(writer.append(make_record(2, 1, 2, 6.0, true)).is_ok());
  writer.close();

  Result<std::string> bytes = read_file(path);
  ASSERT_TRUE(bytes.is_ok());
  JournalScan scan = scan_journal(bytes.value(), kPrint);
  ASSERT_TRUE(scan.usable);
  EXPECT_EQ(scan.records.size(), 2u);

  // Re-opening at the first record's end simulates torn-tail repair: the
  // second record is cut away and a new append lands where it was.
  const std::size_t one_record = kJournalHeaderBytes +
                                 (scan.valid_bytes - kJournalHeaderBytes) / 2;
  ASSERT_TRUE(writer.open(path, one_record).is_ok());
  ASSERT_TRUE(writer.append(make_record(2, 0, 2, 7.0, false)).is_ok());
  writer.close();

  bytes = read_file(path);
  ASSERT_TRUE(bytes.is_ok());
  scan = scan_journal(bytes.value(), kPrint);
  ASSERT_TRUE(scan.usable);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].update.rtt_ms, 7.0);
  EXPECT_FALSE(scan.truncated);
}

TEST(ServeJournalWriter, OpenFailsCleanlyOnMissingFile) {
  JournalWriter writer;
  const Status s =
      writer.open(::testing::TempDir() + "/no/such/dir/journal", 0);
  EXPECT_FALSE(s.is_ok());
  EXPECT_FALSE(writer.is_open());
}

}  // namespace
}  // namespace pathsel::serve
