// Shared test fixtures: hand-built datasets and topologies.
#pragma once

#include <initializer_list>
#include <vector>

#include "core/path_table.h"
#include "meas/dataset.h"
#include "topo/topology.h"

namespace pathsel::test {

/// BuildOptions with just the sample threshold set.
inline core::BuildOptions min_samples(int n) {
  core::BuildOptions o;
  o.min_samples = n;
  return o;
}

/// Appends one completed traceroute invocation; rtts of NaN-free values, one
/// ProbeSample per value.  Values <= 0 mark lost samples.
inline void add_invocation(meas::Dataset& ds, int src, int dst,
                           std::initializer_list<double> rtts,
                           SimTime when = SimTime::start(), int episode = -1) {
  meas::Measurement m;
  m.when = when;
  m.src = topo::HostId{src};
  m.dst = topo::HostId{dst};
  m.episode = episode;
  m.completed = true;
  std::size_t i = 0;
  for (const double rtt : rtts) {
    if (i >= m.samples.size()) break;
    if (rtt <= 0.0) {
      m.samples[i].lost = true;
    } else {
      m.samples[i].lost = false;
      m.samples[i].rtt_ms = rtt;
    }
    ++i;
  }
  ds.measurements.push_back(std::move(m));
}

/// Appends `count` identical invocations of (rtt, rtt, rtt).
inline void add_invocations(meas::Dataset& ds, int src, int dst, double rtt,
                            int count, SimTime when = SimTime::start()) {
  for (int i = 0; i < count; ++i) add_invocation(ds, src, dst, {rtt, rtt, rtt}, when);
}

/// A traceroute dataset over host ids [0, host_count).
inline meas::Dataset make_dataset(int host_count) {
  meas::Dataset ds;
  ds.name = "synthetic";
  ds.kind = meas::MeasurementKind::kTraceroute;
  ds.duration = Duration::days(1);
  for (int i = 0; i < host_count; ++i) ds.hosts.push_back(topo::HostId{i});
  return ds;
}

/// Appends one completed TCP transfer measurement.
inline void add_transfer(meas::Dataset& ds, int src, int dst, double bw_kBps,
                         double rtt_ms, double loss) {
  meas::Measurement m;
  m.src = topo::HostId{src};
  m.dst = topo::HostId{dst};
  m.completed = true;
  m.bandwidth_kBps = bw_kBps;
  m.tcp_rtt_ms = rtt_ms;
  m.tcp_loss_rate = loss;
  ds.measurements.push_back(std::move(m));
}

/// A two-AS topology: AS0 (provider, two routers in SEA/NYC) and AS1 (stub,
/// one router in CHI), with hosts on every router.
inline topo::Topology make_two_as_topology() {
  topo::Topology t;
  const auto as0 = t.add_as(topo::AsTier::kBackbone, topo::IgpPolicy::kDelay, "BB");
  const auto as1 = t.add_as(topo::AsTier::kStub, topo::IgpPolicy::kHopCount, "ST");
  const auto r_sea = t.add_router(as0, 0, "bb.sea");   // city 0 = SEA
  const auto r_nyc = t.add_router(as0, 25, "bb.nyc");  // city 25 = NYC
  const auto r_chi = t.add_router(as1, 13, "st.chi");  // city 13 = CHI
  t.add_link(r_sea, r_nyc, topo::LinkKind::kIntraAs, 155.0, 0.3);
  t.add_link(r_chi, r_sea, topo::LinkKind::kTransit, 45.0, 0.4);
  t.add_relation(as0, as1, topo::AsRelation::kProviderOf);
  t.add_host(r_sea, "h.sea", false);
  t.add_host(r_nyc, "h.nyc", false);
  t.add_host(r_chi, "h.chi", false);
  return t;
}

}  // namespace pathsel::test
