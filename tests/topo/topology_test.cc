#include "topo/topology.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::topo {
namespace {

TEST(Topology, BuildersAssignSequentialIds) {
  Topology t;
  const AsId a0 = t.add_as(AsTier::kBackbone, IgpPolicy::kDelay, "a");
  const AsId a1 = t.add_as(AsTier::kStub, IgpPolicy::kHopCount, "b");
  EXPECT_EQ(a0.value(), 0);
  EXPECT_EQ(a1.value(), 1);
  const RouterId r0 = t.add_router(a0, 0, "r0");
  const RouterId r1 = t.add_router(a1, 1, "r1");
  EXPECT_EQ(r0.value(), 0);
  EXPECT_EQ(r1.value(), 1);
  EXPECT_EQ(t.as_count(), 2u);
  EXPECT_EQ(t.router_count(), 2u);
}

TEST(Topology, RouterInheritsCityLocation) {
  Topology t;
  const AsId as = t.add_as(AsTier::kStub, IgpPolicy::kHopCount, "s");
  const RouterId r = t.add_router(as, 3, "r");
  EXPECT_EQ(t.router(r).city, 3u);
  EXPECT_DOUBLE_EQ(t.router(r).location.lat_deg, cities()[3].location.lat_deg);
}

TEST(Topology, LinkComputesPropagationDelay) {
  const Topology t = test::make_two_as_topology();
  // SEA <-> NYC backbone link: one-way delay should be ~ 20-35 ms.
  const Link& l = t.link(LinkId{0});
  EXPECT_GT(l.prop_delay_ms, 15.0);
  EXPECT_LT(l.prop_delay_ms, 45.0);
  EXPECT_EQ(l.kind, LinkKind::kIntraAs);
}

TEST(Topology, IntraCityLinkHasFloorDelay) {
  Topology t;
  const AsId as = t.add_as(AsTier::kStub, IgpPolicy::kHopCount, "s");
  const RouterId r0 = t.add_router(as, 0, "r0");
  const RouterId r1 = t.add_router(as, 0, "r1");
  const LinkId l = t.add_link(r0, r1, LinkKind::kIntraAs, 45.0, 0.2);
  EXPECT_GE(t.link(l).prop_delay_ms, 0.1);
}

TEST(Topology, TimezoneOffsetFollowsLongitude) {
  const Topology t = test::make_two_as_topology();
  // SEA-NYC link midpoint is well east of PST: positive offset.
  EXPECT_GT(t.link(LinkId{0}).timezone_offset_hours, 0.5);
}

TEST(Topology, LinkKindMustMatchEndpoints) {
  Topology t;
  const AsId a = t.add_as(AsTier::kStub, IgpPolicy::kHopCount, "a");
  const AsId b = t.add_as(AsTier::kStub, IgpPolicy::kHopCount, "b");
  const RouterId ra = t.add_router(a, 0, "ra");
  const RouterId rb = t.add_router(b, 1, "rb");
  EXPECT_DEATH(t.add_link(ra, rb, LinkKind::kIntraAs, 45.0, 0.2),
               "inconsistent");
  const RouterId ra2 = t.add_router(a, 2, "ra2");
  EXPECT_DEATH(t.add_link(ra, ra2, LinkKind::kTransit, 45.0, 0.2),
               "inconsistent");
}

TEST(Topology, SelfLoopAborts) {
  Topology t;
  const AsId a = t.add_as(AsTier::kStub, IgpPolicy::kHopCount, "a");
  const RouterId r = t.add_router(a, 0, "r");
  EXPECT_DEATH(t.add_link(r, r, LinkKind::kIntraAs, 45.0, 0.2), "self-loop");
}

TEST(Topology, NeighborsListsBothDirections) {
  const Topology t = test::make_two_as_topology();
  const auto& sea = t.neighbors(RouterId{0});
  ASSERT_EQ(sea.size(), 2u);  // NYC (intra) + CHI (transit)
  const auto& nyc = t.neighbors(RouterId{1});
  ASSERT_EQ(nyc.size(), 1u);
  EXPECT_EQ(nyc[0].neighbor, RouterId{0});
}

TEST(Topology, LinksBetweenFindsInterAsLinks) {
  const Topology t = test::make_two_as_topology();
  const auto links = t.links_between(AsId{0}, AsId{1});
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(t.link(links[0]).kind, LinkKind::kTransit);
  EXPECT_TRUE(t.adjacent(AsId{0}, AsId{1}));
  EXPECT_TRUE(t.adjacent(AsId{1}, AsId{0}));
}

TEST(Topology, OtherEnd) {
  const Topology t = test::make_two_as_topology();
  const Link& l = t.link(LinkId{0});
  EXPECT_EQ(t.other_end(l.id, l.a), l.b);
  EXPECT_EQ(t.other_end(l.id, l.b), l.a);
  EXPECT_DEATH((void)t.other_end(l.id, RouterId{2}), "not on link");
}

TEST(Topology, RelationsWireBothSides) {
  const Topology t = test::make_two_as_topology();
  const auto& bb = t.as_at(AsId{0});
  const auto& st = t.as_at(AsId{1});
  ASSERT_EQ(bb.customers.size(), 1u);
  EXPECT_EQ(bb.customers[0], AsId{1});
  ASSERT_EQ(st.providers.size(), 1u);
  EXPECT_EQ(st.providers[0], AsId{0});
  EXPECT_TRUE(bb.peers.empty());
}

TEST(Topology, PeerRelation) {
  Topology t;
  const AsId a = t.add_as(AsTier::kBackbone, IgpPolicy::kDelay, "a");
  const AsId b = t.add_as(AsTier::kBackbone, IgpPolicy::kDelay, "b");
  t.add_relation(a, b, AsRelation::kPeerOf);
  EXPECT_EQ(t.as_at(a).peers.size(), 1u);
  EXPECT_EQ(t.as_at(b).peers.size(), 1u);
}

TEST(Topology, PreferredProviderMustBeProvider) {
  Topology t = test::make_two_as_topology();
  t.set_preferred_provider(AsId{1}, AsId{0});
  EXPECT_EQ(t.as_at(AsId{1}).preferred_provider, AsId{0});
  EXPECT_DEATH(t.set_preferred_provider(AsId{0}, AsId{1}), "actual provider");
}

TEST(Topology, HostAttachesAndInheritsRegion) {
  const Topology t = test::make_two_as_topology();
  EXPECT_EQ(t.host_count(), 3u);
  EXPECT_EQ(t.host(HostId{0}).region, Region::kNorthAmerica);
  EXPECT_FALSE(t.host(HostId{0}).icmp_rate_limited);
}

TEST(Topology, UnknownIdsAbort) {
  const Topology t = test::make_two_as_topology();
  EXPECT_DEATH((void)t.router(RouterId{99}), "unknown");
  EXPECT_DEATH((void)t.link(LinkId{99}), "unknown");
  EXPECT_DEATH((void)t.host(HostId{99}), "unknown");
  EXPECT_DEATH((void)t.as_at(AsId{99}), "unknown");
}

TEST(Ids, StrongTypesCompareAndHash) {
  const HostId a{1};
  const HostId b{1};
  const HostId c{2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<HostId>{}(a), std::hash<HostId>{}(b));
  EXPECT_FALSE(HostId{}.valid());
  EXPECT_TRUE(a.valid());
}

}  // namespace
}  // namespace pathsel::topo
