#include "topo/geo.h"

#include <gtest/gtest.h>

namespace pathsel::topo {
namespace {

const City& city_by_name(std::string_view name) {
  for (const City& c : cities()) {
    if (c.name == name) return c;
  }
  ADD_FAILURE() << "city not found: " << name;
  return cities()[0];
}

TEST(Geo, ZeroDistanceToSelf) {
  const City& sea = city_by_name("SEA");
  EXPECT_DOUBLE_EQ(great_circle_km(sea.location, sea.location), 0.0);
}

TEST(Geo, DistanceIsSymmetric) {
  const City& a = city_by_name("SEA");
  const City& b = city_by_name("MIA");
  EXPECT_DOUBLE_EQ(great_circle_km(a.location, b.location),
                   great_circle_km(b.location, a.location));
}

TEST(Geo, KnownDistances) {
  EXPECT_NEAR(great_circle_km(city_by_name("SEA").location,
                              city_by_name("BOS").location),
              4000.0, 150.0);
  EXPECT_NEAR(great_circle_km(city_by_name("NYC").location,
                              city_by_name("LON").location),
              5570.0, 150.0);
  EXPECT_NEAR(great_circle_km(city_by_name("SFO").location,
                              city_by_name("LAX").location),
              560.0, 60.0);
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  const auto near_ms = propagation_delay_ms(city_by_name("SFO").location,
                                            city_by_name("SJC").location);
  const auto far_ms = propagation_delay_ms(city_by_name("SEA").location,
                                           city_by_name("MIA").location);
  EXPECT_LT(near_ms, far_ms);
  // Cross-country one-way fiber delay is on the order of 20-35 ms.
  EXPECT_GT(far_ms, 15.0);
  EXPECT_LT(far_ms, 45.0);
}

TEST(Geo, TriangleInequalityOnSample) {
  const auto ab = great_circle_km(city_by_name("SEA").location,
                                  city_by_name("CHI").location);
  const auto bc = great_circle_km(city_by_name("CHI").location,
                                  city_by_name("NYC").location);
  const auto ac = great_circle_km(city_by_name("SEA").location,
                                  city_by_name("NYC").location);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST(Geo, NorthAmericanPrefix) {
  const auto na = north_american_cities();
  EXPECT_GE(na.size(), 20u);
  for (const City& c : na) {
    EXPECT_EQ(c.region, Region::kNorthAmerica) << c.name;
  }
  EXPECT_GT(cities().size(), na.size());
  for (std::size_t i = na.size(); i < cities().size(); ++i) {
    EXPECT_NE(cities()[i].region, Region::kNorthAmerica);
  }
}

TEST(Geo, ExchangePointsExist) {
  int na_exchanges = 0;
  int world_exchanges = 0;
  for (const City& c : cities()) {
    if (!c.exchange_point) continue;
    (c.region == Region::kNorthAmerica ? na_exchanges : world_exchanges) += 1;
  }
  EXPECT_GE(na_exchanges, 3);
  EXPECT_GE(world_exchanges, 1);
}

TEST(Geo, CityNamesUnique) {
  for (std::size_t i = 0; i < cities().size(); ++i) {
    for (std::size_t j = i + 1; j < cities().size(); ++j) {
      EXPECT_NE(cities()[i].name, cities()[j].name);
    }
  }
}

TEST(Geo, RegionToString) {
  EXPECT_STREQ(to_string(Region::kNorthAmerica), "NA");
  EXPECT_STREQ(to_string(Region::kEurope), "EU");
}

}  // namespace
}  // namespace pathsel::topo
