#include "topo/generator.h"

#include <queue>
#include <set>

#include <gtest/gtest.h>

namespace pathsel::topo {
namespace {

GeneratorConfig small_config(std::uint64_t seed, bool world = false) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.backbone_count = 4;
  cfg.regional_count = 8;
  cfg.stub_count = 20;
  cfg.world = world;
  return cfg;
}

bool router_graph_connected(const Topology& t) {
  if (t.router_count() == 0) return true;
  std::vector<bool> seen(t.router_count(), false);
  std::queue<RouterId> q;
  q.push(RouterId{0});
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const RouterId u = q.front();
    q.pop();
    for (const auto& inc : t.neighbors(u)) {
      if (!seen[inc.neighbor.index()]) {
        seen[inc.neighbor.index()] = true;
        ++visited;
        q.push(inc.neighbor);
      }
    }
  }
  return visited == t.router_count();
}

TEST(Generator, ProducesRequestedAsCounts) {
  const Topology t = generate_topology(small_config(1));
  int backbones = 0;
  int regionals = 0;
  int stubs = 0;
  for (const auto& as : t.ases()) {
    switch (as.tier) {
      case AsTier::kBackbone: ++backbones; break;
      case AsTier::kRegional: ++regionals; break;
      case AsTier::kStub: ++stubs; break;
    }
  }
  EXPECT_EQ(backbones, 5);  // 4 commercial + research
  EXPECT_EQ(regionals, 8);
  EXPECT_EQ(stubs, 20);
}

TEST(Generator, RouterGraphIsConnected) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 42ull}) {
    const Topology t = generate_topology(small_config(seed));
    EXPECT_TRUE(router_graph_connected(t)) << "seed " << seed;
  }
}

TEST(Generator, EveryStubHasACommercialProvider) {
  const Topology t = generate_topology(small_config(5));
  for (const auto& as : t.ases()) {
    if (as.tier != AsTier::kStub) continue;
    bool has_commercial = false;
    for (const AsId p : as.providers) {
      if (t.as_at(p).name != "RESEARCH-NET") has_commercial = true;
    }
    EXPECT_TRUE(has_commercial) << as.name;
  }
}

TEST(Generator, BackbonesPeerFullMesh) {
  const Topology t = generate_topology(small_config(7));
  std::vector<AsId> commercial;
  for (const auto& as : t.ases()) {
    if (as.tier == AsTier::kBackbone && as.name != "RESEARCH-NET") {
      commercial.push_back(as.id);
    }
  }
  for (std::size_t i = 0; i < commercial.size(); ++i) {
    for (std::size_t j = i + 1; j < commercial.size(); ++j) {
      const auto& peers = t.as_at(commercial[i]).peers;
      EXPECT_NE(std::find(peers.begin(), peers.end(), commercial[j]),
                peers.end());
      EXPECT_TRUE(t.adjacent(commercial[i], commercial[j]));
    }
  }
}

TEST(Generator, ResearchBackboneHasOnlyCustomers) {
  const Topology t = generate_topology(small_config(9));
  for (const auto& as : t.ases()) {
    if (as.name != "RESEARCH-NET") continue;
    EXPECT_TRUE(as.providers.empty());
    EXPECT_TRUE(as.peers.empty());
    EXPECT_FALSE(as.customers.empty());
  }
}

TEST(Generator, ResearchDisabledWhenFractionZero) {
  GeneratorConfig cfg = small_config(11);
  cfg.research_member_fraction = 0.0;
  const Topology t = generate_topology(cfg);
  for (const auto& as : t.ases()) {
    EXPECT_NE(as.name, "RESEARCH-NET");
  }
}

TEST(Generator, RelationsHaveBackingLinks) {
  const Topology t = generate_topology(small_config(13));
  for (const auto& as : t.ases()) {
    for (const AsId customer : as.customers) {
      EXPECT_TRUE(t.adjacent(as.id, customer))
          << as.name << " -> " << t.as_at(customer).name;
    }
  }
}

TEST(Generator, NaOnlyWorldHasNoInternationalHosts) {
  const Topology t = generate_topology(small_config(15, false));
  for (const auto& h : t.hosts()) {
    EXPECT_EQ(h.region, Region::kNorthAmerica);
  }
}

TEST(Generator, WorldConfigPlacesInternationalHosts) {
  GeneratorConfig cfg = small_config(17, true);
  cfg.stub_count = 40;
  const Topology t = generate_topology(cfg);
  int intl = 0;
  for (const auto& h : t.hosts()) {
    intl += h.region != Region::kNorthAmerica ? 1 : 0;
  }
  EXPECT_GT(intl, 0);
  EXPECT_TRUE(router_graph_connected(t));
}

TEST(Generator, DeterministicForSameSeed) {
  const Topology a = generate_topology(small_config(21));
  const Topology b = generate_topology(small_config(21));
  ASSERT_EQ(a.router_count(), b.router_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
    EXPECT_DOUBLE_EQ(a.links()[i].base_utilization,
                     b.links()[i].base_utilization);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Topology a = generate_topology(small_config(22));
  const Topology b = generate_topology(small_config(23));
  bool differs = a.link_count() != b.link_count();
  if (!differs) {
    for (std::size_t i = 0; i < a.link_count(); ++i) {
      if (a.links()[i].base_utilization != b.links()[i].base_utilization) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, PublicExchangeLinksAtExchangeCities) {
  const Topology t = generate_topology(small_config(25));
  int exchange_links = 0;
  for (const auto& l : t.links()) {
    if (l.kind != LinkKind::kPublicExchange) continue;
    ++exchange_links;
    EXPECT_TRUE(cities()[t.router(l.a).city].exchange_point);
    EXPECT_EQ(t.router(l.a).city, t.router(l.b).city);
  }
  EXPECT_GT(exchange_links, 0);
}

TEST(Generator, HopCountIgpUsesUnitMetrics) {
  const Topology t = generate_topology(small_config(27));
  for (const auto& l : t.links()) {
    if (l.kind != LinkKind::kIntraAs) continue;
    const auto& as = t.as_at(t.router(l.a).as);
    if (as.igp == IgpPolicy::kHopCount) {
      EXPECT_DOUBLE_EQ(l.igp_metric, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(l.igp_metric, l.prop_delay_ms);
    }
  }
}

TEST(Generator, UtilizationsWithinBounds) {
  const Topology t = generate_topology(small_config(29));
  for (const auto& l : t.links()) {
    EXPECT_GE(l.base_utilization, 0.03);
    EXPECT_LE(l.base_utilization, 0.95);
    EXPECT_GT(l.capacity_mbps, 0.0);
  }
}

TEST(Generator, HostsPerStub) {
  GeneratorConfig cfg = small_config(31);
  cfg.hosts_per_stub = 2;
  const Topology t = generate_topology(cfg);
  EXPECT_EQ(t.host_count(), 40u);
}

TEST(Generator, InvalidConfigAborts) {
  GeneratorConfig cfg = small_config(1);
  cfg.backbone_count = 1;
  EXPECT_DEATH((void)generate_topology(cfg), "two backbones");
}

}  // namespace
}  // namespace pathsel::topo
