#include "topo/generator.h"

#include <queue>
#include <set>

#include <gtest/gtest.h>

namespace pathsel::topo {
namespace {

GeneratorConfig small_config(std::uint64_t seed, bool world = false) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.backbone_count = 4;
  cfg.regional_count = 8;
  cfg.stub_count = 20;
  cfg.world = world;
  return cfg;
}

bool router_graph_connected(const Topology& t) {
  if (t.router_count() == 0) return true;
  std::vector<bool> seen(t.router_count(), false);
  std::queue<RouterId> q;
  q.push(RouterId{0});
  seen[0] = true;
  std::size_t visited = 1;
  while (!q.empty()) {
    const RouterId u = q.front();
    q.pop();
    for (const auto& inc : t.neighbors(u)) {
      if (!seen[inc.neighbor.index()]) {
        seen[inc.neighbor.index()] = true;
        ++visited;
        q.push(inc.neighbor);
      }
    }
  }
  return visited == t.router_count();
}

TEST(Generator, ProducesRequestedAsCounts) {
  const Topology t = generate_topology(small_config(1));
  int backbones = 0;
  int regionals = 0;
  int stubs = 0;
  for (const auto& as : t.ases()) {
    switch (as.tier) {
      case AsTier::kBackbone: ++backbones; break;
      case AsTier::kRegional: ++regionals; break;
      case AsTier::kStub: ++stubs; break;
    }
  }
  EXPECT_EQ(backbones, 5);  // 4 commercial + research
  EXPECT_EQ(regionals, 8);
  EXPECT_EQ(stubs, 20);
}

TEST(Generator, RouterGraphIsConnected) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 42ull}) {
    const Topology t = generate_topology(small_config(seed));
    EXPECT_TRUE(router_graph_connected(t)) << "seed " << seed;
  }
}

TEST(Generator, EveryStubHasACommercialProvider) {
  const Topology t = generate_topology(small_config(5));
  for (const auto& as : t.ases()) {
    if (as.tier != AsTier::kStub) continue;
    bool has_commercial = false;
    for (const AsId p : as.providers) {
      if (t.as_at(p).name != "RESEARCH-NET") has_commercial = true;
    }
    EXPECT_TRUE(has_commercial) << as.name;
  }
}

TEST(Generator, BackbonesPeerFullMesh) {
  const Topology t = generate_topology(small_config(7));
  std::vector<AsId> commercial;
  for (const auto& as : t.ases()) {
    if (as.tier == AsTier::kBackbone && as.name != "RESEARCH-NET") {
      commercial.push_back(as.id);
    }
  }
  for (std::size_t i = 0; i < commercial.size(); ++i) {
    for (std::size_t j = i + 1; j < commercial.size(); ++j) {
      const auto& peers = t.as_at(commercial[i]).peers;
      EXPECT_NE(std::find(peers.begin(), peers.end(), commercial[j]),
                peers.end());
      EXPECT_TRUE(t.adjacent(commercial[i], commercial[j]));
    }
  }
}

TEST(Generator, ResearchBackboneHasOnlyCustomers) {
  const Topology t = generate_topology(small_config(9));
  for (const auto& as : t.ases()) {
    if (as.name != "RESEARCH-NET") continue;
    EXPECT_TRUE(as.providers.empty());
    EXPECT_TRUE(as.peers.empty());
    EXPECT_FALSE(as.customers.empty());
  }
}

TEST(Generator, ResearchDisabledWhenFractionZero) {
  GeneratorConfig cfg = small_config(11);
  cfg.research_member_fraction = 0.0;
  const Topology t = generate_topology(cfg);
  for (const auto& as : t.ases()) {
    EXPECT_NE(as.name, "RESEARCH-NET");
  }
}

TEST(Generator, RelationsHaveBackingLinks) {
  const Topology t = generate_topology(small_config(13));
  for (const auto& as : t.ases()) {
    for (const AsId customer : as.customers) {
      EXPECT_TRUE(t.adjacent(as.id, customer))
          << as.name << " -> " << t.as_at(customer).name;
    }
  }
}

TEST(Generator, NaOnlyWorldHasNoInternationalHosts) {
  const Topology t = generate_topology(small_config(15, false));
  for (const auto& h : t.hosts()) {
    EXPECT_EQ(h.region, Region::kNorthAmerica);
  }
}

TEST(Generator, WorldConfigPlacesInternationalHosts) {
  GeneratorConfig cfg = small_config(17, true);
  cfg.stub_count = 40;
  const Topology t = generate_topology(cfg);
  int intl = 0;
  for (const auto& h : t.hosts()) {
    intl += h.region != Region::kNorthAmerica ? 1 : 0;
  }
  EXPECT_GT(intl, 0);
  EXPECT_TRUE(router_graph_connected(t));
}

TEST(Generator, DeterministicForSameSeed) {
  const Topology a = generate_topology(small_config(21));
  const Topology b = generate_topology(small_config(21));
  ASSERT_EQ(a.router_count(), b.router_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
    EXPECT_DOUBLE_EQ(a.links()[i].base_utilization,
                     b.links()[i].base_utilization);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Topology a = generate_topology(small_config(22));
  const Topology b = generate_topology(small_config(23));
  bool differs = a.link_count() != b.link_count();
  if (!differs) {
    for (std::size_t i = 0; i < a.link_count(); ++i) {
      if (a.links()[i].base_utilization != b.links()[i].base_utilization) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, PublicExchangeLinksAtExchangeCities) {
  const Topology t = generate_topology(small_config(25));
  int exchange_links = 0;
  for (const auto& l : t.links()) {
    if (l.kind != LinkKind::kPublicExchange) continue;
    ++exchange_links;
    EXPECT_TRUE(cities()[t.router(l.a).city].exchange_point);
    EXPECT_EQ(t.router(l.a).city, t.router(l.b).city);
  }
  EXPECT_GT(exchange_links, 0);
}

TEST(Generator, HopCountIgpUsesUnitMetrics) {
  const Topology t = generate_topology(small_config(27));
  for (const auto& l : t.links()) {
    if (l.kind != LinkKind::kIntraAs) continue;
    const auto& as = t.as_at(t.router(l.a).as);
    if (as.igp == IgpPolicy::kHopCount) {
      EXPECT_DOUBLE_EQ(l.igp_metric, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(l.igp_metric, l.prop_delay_ms);
    }
  }
}

TEST(Generator, UtilizationsWithinBounds) {
  const Topology t = generate_topology(small_config(29));
  for (const auto& l : t.links()) {
    EXPECT_GE(l.base_utilization, 0.03);
    EXPECT_LE(l.base_utilization, 0.95);
    EXPECT_GT(l.capacity_mbps, 0.0);
  }
}

TEST(Generator, HostsPerStub) {
  GeneratorConfig cfg = small_config(31);
  cfg.hosts_per_stub = 2;
  const Topology t = generate_topology(cfg);
  EXPECT_EQ(t.host_count(), 40u);
}

TEST(Generator, InvalidConfigAborts) {
  GeneratorConfig cfg = small_config(1);
  cfg.backbone_count = 1;
  EXPECT_DEATH((void)generate_topology(cfg), "two backbones");
}

// ---------------------------------------------------------------------------
// Degree-/tier-weighted measurement meshes.

WeightedMeshConfig mesh_config(std::uint64_t seed, int hosts = 400,
                               double density = 0.3) {
  WeightedMeshConfig cfg;
  cfg.seed = seed;
  cfg.hosts = hosts;
  cfg.target_density = density;
  return cfg;
}

TEST(WeightedMesh, DeterministicForSameSeedAndSeedSensitive) {
  const WeightedMesh a = generate_weighted_mesh(mesh_config(7));
  const WeightedMesh b = generate_weighted_mesh(mesh_config(7));
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].a, b.edges[i].a);
    EXPECT_EQ(a.edges[i].b, b.edges[i].b);
    EXPECT_DOUBLE_EQ(a.edges[i].rtt_ms, b.edges[i].rtt_ms);
  }
  EXPECT_EQ(a.tiers, b.tiers);
  const WeightedMesh c = generate_weighted_mesh(mesh_config(8));
  EXPECT_NE(a.edges.size(), c.edges.size());
}

TEST(WeightedMesh, RealizedDensityTracksTarget) {
  const WeightedMesh m = generate_weighted_mesh(mesh_config(11, 600, 0.4));
  const double pairs = 600.0 * 599.0 / 2.0;
  const double realized = static_cast<double>(m.edges.size()) / pairs;
  // Probability clamping on hub pairs biases slightly low; ±20% relative is
  // a loose but seed-stable envelope.
  EXPECT_GT(realized, 0.4 * 0.8);
  EXPECT_LT(realized, 0.4 * 1.2);
}

TEST(WeightedMesh, BackbonesOutDegreeStubs) {
  const WeightedMesh m = generate_weighted_mesh(mesh_config(13, 800, 0.2));
  std::vector<int> degree(800, 0);
  for (const auto& e : m.edges) {
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }
  double backbone_sum = 0.0, stub_sum = 0.0;
  int backbone_count = 0, stub_count = 0;
  for (std::size_t i = 0; i < m.tiers.size(); ++i) {
    if (m.tiers[i] == MeshTier::kBackbone) {
      backbone_sum += degree[i];
      ++backbone_count;
    } else if (m.tiers[i] == MeshTier::kStub) {
      stub_sum += degree[i];
      ++stub_count;
    }
  }
  ASSERT_GT(backbone_count, 0);
  ASSERT_GT(stub_count, 0);
  // Mean backbone degree should dominate mean stub degree by well over the
  // lognormal jitter (weight ratio is 8x; edge probability is linear in it).
  EXPECT_GT(backbone_sum / backbone_count, 3.0 * (stub_sum / stub_count));
}

TEST(WeightedMesh, EdgesAreOrderedPositiveAndTierScaled) {
  const WeightedMesh m = generate_weighted_mesh(mesh_config(17));
  double backbone_rtt = 0.0, stub_rtt = 0.0;
  int backbone_edges = 0, stub_edges = 0;
  for (const auto& e : m.edges) {
    ASSERT_LT(e.a, e.b);
    ASSERT_GE(e.a, 0);
    ASSERT_LT(e.b, m.hosts);
    ASSERT_GT(e.rtt_ms, 0.0);
    const auto ta = m.tiers[static_cast<std::size_t>(e.a)];
    const auto tb = m.tiers[static_cast<std::size_t>(e.b)];
    if (ta == MeshTier::kBackbone && tb == MeshTier::kBackbone) {
      backbone_rtt += e.rtt_ms;
      ++backbone_edges;
    } else if (ta == MeshTier::kStub && tb == MeshTier::kStub) {
      stub_rtt += e.rtt_ms;
      ++stub_edges;
    }
  }
  ASSERT_GT(backbone_edges, 0);
  ASSERT_GT(stub_edges, 0);
  // Backbone–backbone edges are 0.25× the stub–stub RTT scale.
  EXPECT_LT(backbone_rtt / backbone_edges, 0.6 * (stub_rtt / stub_edges));
}

TEST(WeightedMesh, InvalidConfigAborts) {
  WeightedMeshConfig bad = mesh_config(1);
  bad.hosts = 0;
  EXPECT_DEATH((void)generate_weighted_mesh(bad), "at least one host");
  bad = mesh_config(1);
  bad.target_density = 0.0;
  EXPECT_DEATH((void)generate_weighted_mesh(bad), "target_density");
  bad = mesh_config(1);
  bad.backbone_fraction = 0.8;
  bad.regional_fraction = 0.4;
  EXPECT_DEATH((void)generate_weighted_mesh(bad), "tier fractions");
}

}  // namespace
}  // namespace pathsel::topo
