#include "stats/ttest.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/tdist.h"

#include "util/rng.h"

namespace pathsel::stats {
namespace {

MeanEstimate estimate_of(std::initializer_list<double> values) {
  Summary s;
  for (const double v : values) s.add(v);
  return MeanEstimate::from_summary(s);
}

MeanEstimate noisy_estimate(double mean, double sd, int n, std::uint64_t seed) {
  Rng rng{seed};
  Summary s;
  for (int i = 0; i < n; ++i) s.add(rng.normal(mean, sd));
  return MeanEstimate::from_summary(s);
}

TEST(WelchTTest, ClearlySeparatedMeansAreSignificant) {
  const auto a = noisy_estimate(100.0, 5.0, 50, 1);
  const auto b = noisy_estimate(50.0, 5.0, 50, 2);
  const auto r = welch_ttest(a, b);
  EXPECT_EQ(r.verdict, Significance::kBetter);
  EXPECT_NEAR(r.difference, 50.0, 3.0);
  EXPECT_GT(r.half_width, 0.0);
}

TEST(WelchTTest, ReversedMeansAreWorse) {
  const auto a = noisy_estimate(50.0, 5.0, 50, 3);
  const auto b = noisy_estimate(100.0, 5.0, 50, 4);
  EXPECT_EQ(welch_ttest(a, b).verdict, Significance::kWorse);
}

TEST(WelchTTest, OverlappingMeansIndeterminate) {
  const auto a = noisy_estimate(100.0, 30.0, 10, 5);
  const auto b = noisy_estimate(101.0, 30.0, 10, 6);
  EXPECT_EQ(welch_ttest(a, b).verdict, Significance::kIndeterminate);
}

TEST(WelchTTest, ZeroVarianceEqualMeansIsZeroClass) {
  // Loss-rate case: no losses at all on either path.
  const auto a = estimate_of({0.0, 0.0, 0.0});
  const auto b = estimate_of({0.0, 0.0, 0.0});
  const auto r = welch_ttest(a, b);
  EXPECT_EQ(r.verdict, Significance::kZero);
  EXPECT_DOUBLE_EQ(r.difference, 0.0);
}

TEST(WelchTTest, ZeroVarianceDifferentMeans) {
  const auto a = estimate_of({2.0, 2.0, 2.0});
  const auto b = estimate_of({1.0, 1.0, 1.0});
  EXPECT_EQ(welch_ttest(a, b).verdict, Significance::kBetter);
  EXPECT_EQ(welch_ttest(b, a).verdict, Significance::kWorse);
}

TEST(WelchTTest, HalfWidthMatchesClassicFormula) {
  // Equal-variance equal-n case: dof ~= 2n - 2, hw = t * sqrt(2 s^2 / n).
  Summary s1;
  Summary s2;
  Rng rng{7};
  for (int i = 0; i < 30; ++i) {
    s1.add(rng.normal(10.0, 2.0));
    s2.add(rng.normal(10.0, 2.0));
  }
  const auto r = welch_ttest(MeanEstimate::from_summary(s1),
                             MeanEstimate::from_summary(s2));
  EXPECT_NEAR(r.dof, 58.0, 6.0);
  const double expected_hw =
      student_t_quantile(0.975, r.dof) *
      std::sqrt(s1.variance_of_mean() + s2.variance_of_mean());
  EXPECT_NEAR(r.half_width, expected_hw, 1e-9);
}

TEST(WelchTTest, WiderConfidenceWidensInterval) {
  const auto a = noisy_estimate(10.0, 3.0, 20, 8);
  const auto b = noisy_estimate(11.0, 3.0, 20, 9);
  const auto r95 = welch_ttest(a, b, 0.95);
  const auto r99 = welch_ttest(a, b, 0.99);
  EXPECT_GT(r99.half_width, r95.half_width);
}

TEST(WelchTTest, CompositeAlternateEstimate) {
  // The alternate estimate of a two-hop path: the t-test consumes the summed
  // uncertainty exactly like a directly measured path.
  const auto leg1 = noisy_estimate(30.0, 4.0, 40, 10);
  const auto leg2 = noisy_estimate(35.0, 4.0, 40, 11);
  const auto direct = noisy_estimate(100.0, 4.0, 40, 12);
  const auto r = welch_ttest(direct, leg1 + leg2);
  EXPECT_EQ(r.verdict, Significance::kBetter);
  EXPECT_NEAR(r.difference, 35.0, 4.0);
}

TEST(WelchTTest, SignificanceToString) {
  EXPECT_STREQ(to_string(Significance::kBetter), "better");
  EXPECT_STREQ(to_string(Significance::kWorse), "worse");
  EXPECT_STREQ(to_string(Significance::kIndeterminate), "indeterminate");
  EXPECT_STREQ(to_string(Significance::kZero), "zero");
}

TEST(WelchTTest, InvalidConfidenceAborts) {
  const auto a = estimate_of({1.0, 2.0});
  EXPECT_DEATH((void)welch_ttest(a, a, 1.0), "confidence");
}

}  // namespace
}  // namespace pathsel::stats
