#include "stats/cdf.h"

#include <gtest/gtest.h>

namespace pathsel::stats {
namespace {

TEST(EmpiricalCdf, FractionAtOrBelow) {
  EmpiricalCdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(9.0), 1.0);
}

TEST(EmpiricalCdf, FractionAboveComplements) {
  EmpiricalCdf cdf{{-1.0, 0.0, 1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf.fraction_above(0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(-2.0), 1.0);
}

TEST(EmpiricalCdf, AddThenQuery) {
  EmpiricalCdf cdf;
  cdf.add(3.0);
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(0.5), 2.0);
}

TEST(EmpiricalCdf, SortedValuesAreSorted) {
  EmpiricalCdf cdf{{3.0, 1.0, 2.0}};
  const auto v = cdf.sorted_values();
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(EmpiricalCdf, SeriesStaircase) {
  EmpiricalCdf cdf{{10.0, 20.0}};
  const Series s = cdf.to_series("s");
  ASSERT_EQ(s.x.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x[0], 10.0);
  EXPECT_DOUBLE_EQ(s.y[0], 0.5);
  EXPECT_DOUBLE_EQ(s.y[1], 1.0);
}

TEST(EmpiricalCdf, SeriesTrimmingKeepsUntrimmedFractions) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  EmpiricalCdf cdf{std::move(values)};
  const Series s = cdf.to_series("t", 0.05, 0.95);
  // Trimmed series neither starts at 0 nor reaches 1 — like the paper's
  // long-tail-trimmed figures.
  EXPECT_GE(s.y.front(), 0.05);
  EXPECT_LE(s.y.back(), 0.95 + 1e-12);
  EXPECT_LT(s.x.size(), 100u);
}

TEST(EmpiricalCdf, SeriesMonotone) {
  EmpiricalCdf cdf{{5.0, 3.0, 8.0, 1.0, 9.0, 2.0}};
  const Series s = cdf.to_series("m");
  for (std::size_t i = 1; i < s.x.size(); ++i) {
    EXPECT_LE(s.x[i - 1], s.x[i]);
    EXPECT_LT(s.y[i - 1], s.y[i]);
  }
}

TEST(EmpiricalCdf, EmptyQueriesAbort) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DEATH((void)cdf.fraction_at_or_below(0.0), "empty");
}

TEST(EmpiricalCdf, InvalidTrimAborts) {
  EmpiricalCdf cdf{{1.0}};
  EXPECT_DEATH((void)cdf.to_series("x", 0.9, 0.1), "trim");
}

}  // namespace
}  // namespace pathsel::stats
