// Property tests for the stats layer on adversarial inputs.
//
// The invariant suite (stats_invariants_test.cc) checks the textbook
// identities on well-behaved samples; this file attacks the edges it skips:
// duplicate-heavy samples (ties are where order-statistic interpolation and
// KS step functions go wrong), two-sample size-1 cases, zero-variance
// t-tests, and the blanket NaN-free guarantee — no finite input may ever
// produce a NaN, because a single NaN silently poisons every downstream
// CDF, table and golden file.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/ks.h"
#include "stats/quantile.h"
#include "stats/summary.h"
#include "stats/ttest.h"
#include "util/rng.h"

namespace pathsel::stats {
namespace {

// Duplicate-heavy sample: values drawn from a handful of levels, so almost
// every order statistic ties with its neighbours.
std::vector<double> duplicate_heavy(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(rng.uniform_int(0, 4)) * 2.5);
  }
  return out;
}

// --- quantile ------------------------------------------------------------

TEST(StatsProperty, QuantileIsNanFreeBoundedAndMonotoneOnTies) {
  std::uint64_t seed = 501;
  for (const std::size_t n : {1u, 2u, 3u, 10u, 97u, 500u}) {
    SCOPED_TRACE(testing::Message() << "sample size " << n);
    auto sample = duplicate_heavy(n, seed++);
    const double lo = *std::min_element(sample.begin(), sample.end());
    const double hi = *std::max_element(sample.begin(), sample.end());
    double prev = lo;
    for (int i = 0; i <= 100; ++i) {
      const double q = static_cast<double>(i) / 100.0;
      const double v = quantile(sample, q);
      ASSERT_FALSE(std::isnan(v)) << "q=" << q;
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
      EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
      prev = v;
    }
    EXPECT_EQ(quantile(sample, 0.0), lo);
    EXPECT_EQ(quantile(sample, 1.0), hi);
  }
}

TEST(StatsProperty, QuantileOfConstantSampleIsThatConstant) {
  const std::vector<double> sample(37, 4.25);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_EQ(quantile(sample, q), 4.25) << "q=" << q;
  }
  EXPECT_EQ(median(sample), 4.25);
}

TEST(StatsProperty, QuantileSingleElement) {
  const std::vector<double> sample{-3.5};
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(quantile(sample, q), -3.5);
  }
}

TEST(StatsProperty, QuantileSortedAgreesWithQuantile) {
  auto sample = duplicate_heavy(64, 7311);
  auto sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 0.1, 0.37, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(quantile(sample, q), quantile_sorted(sorted, q)) << "q=" << q;
  }
}

// --- two-sample KS -------------------------------------------------------

TEST(StatsProperty, KsIdenticalSamplesHaveZeroDistance) {
  const auto sample = duplicate_heavy(50, 801);
  const KsResult r = ks_two_sample(sample, sample);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_FALSE(std::isnan(r.p_value));
  EXPECT_GT(r.p_value, 0.99);
}

TEST(StatsProperty, KsSizeOneEdges) {
  // The smallest legal inputs: one observation per side.
  const std::vector<double> a{1.0};
  for (const double bv : {1.0, 2.0, -7.0}) {
    const std::vector<double> b{bv};
    const KsResult r = ks_two_sample(a, b);
    ASSERT_FALSE(std::isnan(r.statistic));
    ASSERT_FALSE(std::isnan(r.p_value));
    EXPECT_GE(r.statistic, 0.0);
    EXPECT_LE(r.statistic, 1.0);
    if (bv == 1.0) {
      EXPECT_EQ(r.statistic, 0.0);  // identical single points
    } else {
      EXPECT_EQ(r.statistic, 1.0);  // fully separated single points
    }
  }
  // Size 1 vs size n.
  const auto big = duplicate_heavy(100, 802);
  const KsResult r = ks_two_sample(a, big);
  EXPECT_GE(r.statistic, 0.0);
  EXPECT_LE(r.statistic, 1.0);
  EXPECT_FALSE(std::isnan(r.p_value));
}

TEST(StatsProperty, KsIsSymmetricBoundedAndNanFree) {
  std::uint64_t seed = 901;
  for (int round = 0; round < 20; ++round) {
    Rng rng{seed++};
    const auto a = duplicate_heavy(
        static_cast<std::size_t>(rng.uniform_int(1, 60)), seed++);
    const auto b = duplicate_heavy(
        static_cast<std::size_t>(rng.uniform_int(1, 60)), seed++);
    const KsResult ab = ks_two_sample(a, b);
    const KsResult ba = ks_two_sample(b, a);
    ASSERT_FALSE(std::isnan(ab.statistic));
    ASSERT_FALSE(std::isnan(ab.p_value));
    EXPECT_EQ(ab.statistic, ba.statistic);
    EXPECT_EQ(ab.p_value, ba.p_value);
    EXPECT_GE(ab.statistic, 0.0);
    EXPECT_LE(ab.statistic, 1.0);
    EXPECT_GE(ab.p_value, 0.0);
    EXPECT_LE(ab.p_value, 1.0);
  }
}

TEST(StatsProperty, KsDisjointSupportsSeparateCompletely) {
  const std::vector<double> low(20, 1.0);
  const std::vector<double> high(30, 100.0);
  EXPECT_EQ(ks_two_sample(low, high).statistic, 1.0);
}

// --- Welch t-test --------------------------------------------------------

TEST(StatsProperty, TTestVerdictIsConsistentWithItsInterval) {
  std::uint64_t seed = 1001;
  for (int round = 0; round < 200; ++round) {
    Rng rng{seed++};
    MeanEstimate d{rng.uniform(-50.0, 50.0), rng.uniform(0.0, 10.0),
                   rng.uniform(0.0, 0.5)};
    MeanEstimate alt{rng.uniform(-50.0, 50.0), rng.uniform(0.0, 10.0),
                     rng.uniform(0.0, 0.5)};
    const TTestResult r = welch_ttest(d, alt, 0.95);
    ASSERT_FALSE(std::isnan(r.difference));
    ASSERT_FALSE(std::isnan(r.half_width));
    EXPECT_GE(r.half_width, 0.0);
    switch (r.verdict) {
      case Significance::kBetter:
        EXPECT_GT(r.difference - r.half_width, 0.0);
        break;
      case Significance::kWorse:
        EXPECT_LT(r.difference + r.half_width, 0.0);
        break;
      case Significance::kIndeterminate:
        EXPECT_LE(r.difference - r.half_width, 0.0);
        EXPECT_GE(r.difference + r.half_width, 0.0);
        break;
      case Significance::kZero:
        EXPECT_EQ(r.difference, 0.0);
        break;
    }
  }
}

TEST(StatsProperty, TTestSwapNegatesTheDifference) {
  std::uint64_t seed = 1101;
  for (int round = 0; round < 100; ++round) {
    Rng rng{seed++};
    MeanEstimate d{rng.uniform(-10.0, 10.0), rng.uniform(0.0, 4.0),
                   rng.uniform(0.0, 0.1)};
    MeanEstimate alt{rng.uniform(-10.0, 10.0), rng.uniform(0.0, 4.0),
                     rng.uniform(0.0, 0.1)};
    const TTestResult ab = welch_ttest(d, alt, 0.95);
    const TTestResult ba = welch_ttest(alt, d, 0.95);
    EXPECT_EQ(ab.difference, -ba.difference);
    EXPECT_EQ(ab.half_width, ba.half_width);
    if (ab.verdict == Significance::kBetter) {
      EXPECT_EQ(ba.verdict, Significance::kWorse);
    } else if (ab.verdict == Significance::kWorse) {
      EXPECT_EQ(ba.verdict, Significance::kBetter);
    } else {
      EXPECT_EQ(ba.verdict, ab.verdict);
    }
  }
}

TEST(StatsProperty, TTestZeroVarianceDuplicateSamples) {
  // Perfectly consistent measurements (duplicate-heavy to the limit): no
  // variance, so the verdict is decided by the sign of the difference alone
  // and the zero/zero case classifies as kZero.
  const MeanEstimate fast{10.0, 0.0, 0.0};
  const MeanEstimate slow{12.0, 0.0, 0.0};
  EXPECT_EQ(welch_ttest(slow, fast).verdict, Significance::kBetter);
  EXPECT_EQ(welch_ttest(fast, slow).verdict, Significance::kWorse);
  const MeanEstimate zero{0.0, 0.0, 0.0};
  EXPECT_EQ(welch_ttest(zero, zero).verdict, Significance::kZero);
  const TTestResult equal = welch_ttest(fast, fast);
  EXPECT_EQ(equal.verdict, Significance::kZero);
  EXPECT_EQ(equal.difference, 0.0);
  EXPECT_EQ(equal.half_width, 0.0);
}

TEST(StatsProperty, TTestSingleSampleComposition) {
  // A size-1 edge contributes a point estimate: zero var_of_mean and zero
  // dof_denom.  Composing it with a measured edge must stay NaN-free and
  // fall back to the other side's uncertainty.
  const MeanEstimate point{5.0, 0.0, 0.0};
  const MeanEstimate measured{7.0, 2.0, 0.4};
  const MeanEstimate composed = point + measured;
  EXPECT_EQ(composed.mean, 12.0);
  const TTestResult r = welch_ttest(composed, measured, 0.95);
  ASSERT_FALSE(std::isnan(r.difference));
  ASSERT_FALSE(std::isnan(r.half_width));
  ASSERT_FALSE(std::isnan(r.dof));
  EXPECT_GE(r.dof, 1.0);
}

TEST(StatsProperty, SummaryOfDuplicatesHasZeroVariance) {
  Summary s;
  for (int i = 0; i < 100; ++i) s.add(3.25);
  EXPECT_EQ(s.mean(), 3.25);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.25);
  EXPECT_EQ(s.max(), 3.25);
  const MeanEstimate e = MeanEstimate::from_summary(s);
  EXPECT_EQ(e.var_of_mean, 0.0);
  ASSERT_FALSE(std::isnan(e.dof_denom));
}

}  // namespace
}  // namespace pathsel::stats
