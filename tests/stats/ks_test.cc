#include "stats/ks.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pathsel::stats {
namespace {

std::vector<double> normals(double mean, double sd, int n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.normal(mean, sd));
  return out;
}

TEST(Ks, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const auto r = ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(Ks, DisjointSupportsHaveDistanceOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 11.0, 12.0};
  const auto r = ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.1);
}

TEST(Ks, SameDistributionHighPValue) {
  const auto a = normals(0.0, 1.0, 800, 1);
  const auto b = normals(0.0, 1.0, 800, 2);
  const auto r = ks_two_sample(a, b);
  EXPECT_LT(r.statistic, 0.08);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Ks, ShiftedDistributionDetected) {
  const auto a = normals(0.0, 1.0, 800, 3);
  const auto b = normals(1.0, 1.0, 800, 4);
  const auto r = ks_two_sample(a, b);
  EXPECT_GT(r.statistic, 0.3);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(Ks, KnownSmallCase) {
  // F1 steps at 1,3; F2 steps at 2,4.  Max gap = 0.5 (after 1 or 3).
  const std::vector<double> a{1.0, 3.0};
  const std::vector<double> b{2.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_two_sample(a, b).statistic, 0.5);
}

TEST(Ks, SymmetricInArguments) {
  const auto a = normals(0.0, 2.0, 300, 5);
  const auto b = normals(0.5, 1.5, 400, 6);
  EXPECT_DOUBLE_EQ(ks_two_sample(a, b).statistic,
                   ks_two_sample(b, a).statistic);
}

TEST(Ks, EmptySampleAborts) {
  const std::vector<double> a{1.0};
  const std::vector<double> empty;
  EXPECT_DEATH((void)ks_two_sample(a, empty), "non-empty");
}

class KsSelfSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KsSelfSweep, SameGeneratorRarelyRejected) {
  const auto a = normals(5.0, 3.0, 400, GetParam());
  const auto b = normals(5.0, 3.0, 400, GetParam() + 1000);
  EXPECT_GT(ks_two_sample(a, b).p_value, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsSelfSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace pathsel::stats
