#include "stats/tdist.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pathsel::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBeta, SymmetryRelation) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(incomplete_beta(2.5, 4.0, 0.3),
              1.0 - incomplete_beta(4.0, 2.5, 0.7), 1e-10);
}

TEST(IncompleteBeta, KnownValue) {
  // I_{0.5}(2, 2) = 0.5 by symmetry.
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-10);
}

TEST(StudentT, CdfAtZeroIsHalf) {
  for (const double v : {1.0, 2.0, 5.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, v), 0.5, 1e-12);
  }
}

TEST(StudentT, CdfSymmetry) {
  for (const double t : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(student_t_cdf(t, 7.0) + student_t_cdf(-t, 7.0), 1.0, 1e-10);
  }
}

TEST(StudentT, CdfOneDofIsCauchy) {
  // For v = 1 the t distribution is Cauchy: F(t) = 1/2 + atan(t)/pi.
  for (const double t : {-2.0, -0.5, 0.3, 1.7}) {
    const double expected = 0.5 + std::atan(t) / std::acos(-1.0);
    EXPECT_NEAR(student_t_cdf(t, 1.0), expected, 1e-8);
  }
}

TEST(StudentT, QuantileKnownTableValues) {
  // Classical t-table values for the 0.975 quantile.
  EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.706, 0.01);
  EXPECT_NEAR(student_t_quantile(0.975, 5.0), 2.571, 0.001);
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.228, 0.001);
  EXPECT_NEAR(student_t_quantile(0.975, 30.0), 2.042, 0.001);
  // And the 0.95 quantile.
  EXPECT_NEAR(student_t_quantile(0.95, 1.0), 6.314, 0.01);
  EXPECT_NEAR(student_t_quantile(0.95, 10.0), 1.812, 0.001);
}

TEST(StudentT, QuantileApproachesNormal) {
  // As v grows the 0.975 quantile approaches 1.96.
  EXPECT_NEAR(student_t_quantile(0.975, 1000.0), 1.962, 0.01);
}

TEST(StudentT, QuantileAtHalfIsZero) {
  EXPECT_DOUBLE_EQ(student_t_quantile(0.5, 9.0), 0.0);
}

TEST(StudentT, QuantileSymmetry) {
  EXPECT_NEAR(student_t_quantile(0.1, 8.0), -student_t_quantile(0.9, 8.0),
              1e-8);
}

class TRoundTrip : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TRoundTrip, QuantileInvertsGivenCdf) {
  const auto [p, v] = GetParam();
  const double t = student_t_quantile(p, v);
  EXPECT_NEAR(student_t_cdf(t, v), p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TRoundTrip,
    ::testing::Values(std::pair{0.05, 2.0}, std::pair{0.25, 2.0},
                      std::pair{0.75, 2.0}, std::pair{0.95, 2.0},
                      std::pair{0.05, 17.0}, std::pair{0.5, 17.0},
                      std::pair{0.975, 17.0}, std::pair{0.999, 17.0},
                      std::pair{0.01, 120.0}, std::pair{0.99, 120.0},
                      std::pair{0.975, 1.5}, std::pair{0.9, 0.7}));

TEST(StudentT, InvalidArgumentsAbort) {
  EXPECT_DEATH((void)student_t_quantile(0.0, 5.0), "p in");
  EXPECT_DEATH((void)student_t_quantile(0.5, 0.0), "positive");
  EXPECT_DEATH((void)student_t_cdf(1.0, -1.0), "positive");
}

}  // namespace
}  // namespace pathsel::stats
