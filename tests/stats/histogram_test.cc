#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pathsel::stats {
namespace {

TEST(Histogram, BinningAndMass) {
  Histogram h{0.0, 1.0, 10};
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  EXPECT_DOUBLE_EQ(h.total_mass(), 3.0);
  EXPECT_DOUBLE_EQ(h.mass_at(0), 1.0);
  EXPECT_DOUBLE_EQ(h.mass_at(1), 2.0);
  EXPECT_DOUBLE_EQ(h.mass_at(2), 0.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h{0.0, 1.0, 4};
  h.add(-5.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.mass_at(0), 1.0);
  EXPECT_DOUBLE_EQ(h.mass_at(3), 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.5, 2.5);
  EXPECT_DOUBLE_EQ(h.total_mass(), 2.5);
  EXPECT_DOUBLE_EQ(h.mass_at(0), 2.5);
}

TEST(Histogram, BinCenter) {
  Histogram h{10.0, 2.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_center(0), 11.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 19.0);
}

TEST(Histogram, MedianOfSymmetricMass) {
  Histogram h{0.0, 1.0, 3};
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  EXPECT_NEAR(h.median(), 1.5, 0.5);
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h{0.0, 10.0, 1};
  h.add(5.0, 4.0);  // all mass in [0, 10)
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.25), 2.5, 1e-9);
}

TEST(Histogram, MeanUsesBinCenters) {
  Histogram h{0.0, 2.0, 3};
  h.add(0.5);  // center 1
  h.add(4.5);  // center 5
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, ConvolveDeltas) {
  // delta at 3 (+) delta at 5 = delta at 8.
  Histogram a{0.0, 1.0, 10};
  Histogram b{0.0, 1.0, 10};
  a.add(3.5);
  b.add(5.5);
  const Histogram c = Histogram::convolve(a, b);
  EXPECT_NEAR(c.median(), 9.0, 1.0);  // bins 3 + 5 -> bin 8, center ~9
  EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
}

TEST(Histogram, ConvolutionMeanIsSumOfMeans) {
  Rng rng{3};
  Histogram a{0.0, 1.0, 200};
  Histogram b{0.0, 1.0, 200};
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.uniform(10.0, 50.0));
    b.add(rng.uniform(20.0, 80.0));
  }
  const Histogram c = Histogram::convolve(a, b);
  // Means add under convolution (up to binning error of ~1 bin).
  EXPECT_NEAR(c.mean(), a.mean() + b.mean(), 1.5);
}

TEST(Histogram, ConvolutionMedianOfSymmetric) {
  // Sum of two symmetric distributions is symmetric about the sum of
  // centers: median == mean there.
  Rng rng{4};
  Histogram a{0.0, 1.0, 100};
  Histogram b{0.0, 1.0, 100};
  for (int i = 0; i < 20000; ++i) {
    a.add(rng.normal(30.0, 3.0));
    b.add(rng.normal(40.0, 4.0));
  }
  const Histogram c = Histogram::convolve(a, b);
  EXPECT_NEAR(c.median(), 70.0, 1.0);
}

TEST(Histogram, ConvolveNormalizesWeights) {
  Histogram a{0.0, 1.0, 5};
  Histogram b{0.0, 1.0, 5};
  a.add(0.5, 10.0);
  b.add(0.5, 7.0);
  const Histogram c = Histogram::convolve(a, b);
  EXPECT_NEAR(c.total_mass(), 1.0, 1e-12);
}

TEST(Histogram, ConvolveMismatchedWidthAborts) {
  Histogram a{0.0, 1.0, 5};
  Histogram b{0.0, 2.0, 5};
  a.add(0.5);
  b.add(0.5);
  EXPECT_DEATH((void)Histogram::convolve(a, b), "equal bin widths");
}

TEST(Histogram, EmptyQuantileAborts) {
  Histogram h{0.0, 1.0, 5};
  EXPECT_DEATH((void)h.quantile(0.5), "empty");
}

TEST(Histogram, InvalidConstructionAborts) {
  EXPECT_DEATH((Histogram{0.0, 0.0, 5}), "positive");
  EXPECT_DEATH((Histogram{0.0, 1.0, 0}), "at least one");
}

}  // namespace
}  // namespace pathsel::stats
