#include "stats/summary.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pathsel::stats {
namespace {

TEST(Summary, EmptyState) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, KnownMeanAndVariance) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MatchesNaiveTwoPass) {
  Rng rng{5};
  std::vector<double> xs;
  Summary s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(100.0, 15.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Summary, VarianceOfMean) {
  Summary s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.variance_of_mean(), s.variance() / 10.0, 1e-12);
}

TEST(Summary, MergeEqualsSequential) {
  Rng rng{6};
  Summary whole;
  Summary left;
  Summary right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 50.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  a.add(2.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Summary, MeanOfEmptyAborts) {
  Summary s;
  EXPECT_DEATH((void)s.mean(), "empty");
}

TEST(Summary, VarianceRequiresTwoSamples) {
  Summary s;
  s.add(1.0);
  EXPECT_DEATH((void)s.variance(), "two samples");
}

TEST(MeanEstimate, FromSummaryDegreesOfFreedom) {
  Summary s;
  for (int i = 0; i < 20; ++i) s.add(static_cast<double>(i % 5));
  const auto est = MeanEstimate::from_summary(s);
  EXPECT_DOUBLE_EQ(est.mean, s.mean());
  EXPECT_NEAR(est.var_of_mean, s.variance_of_mean(), 1e-15);
  // A single summary recovers the classical n-1 degrees of freedom.
  EXPECT_NEAR(est.dof(), 19.0, 1e-9);
}

TEST(MeanEstimate, SumAddsMeansAndVariances) {
  Summary s1;
  Summary s2;
  for (int i = 0; i < 10; ++i) {
    s1.add(static_cast<double>(i));
    s2.add(static_cast<double>(2 * i));
  }
  const auto a = MeanEstimate::from_summary(s1);
  const auto b = MeanEstimate::from_summary(s2);
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum.mean, a.mean + b.mean);
  EXPECT_DOUBLE_EQ(sum.var_of_mean, a.var_of_mean + b.var_of_mean);
  // Welch-Satterthwaite dof of a sum lies between min and the plain sum.
  EXPECT_GE(sum.dof(), std::min(a.dof(), b.dof()));
  EXPECT_LE(sum.dof(), a.dof() + b.dof() + 1e-9);
}

TEST(MeanEstimate, ScaledQuadraticVariance) {
  Summary s;
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i));
  const auto est = MeanEstimate::from_summary(s);
  const auto scaled = est.scaled(3.0);
  EXPECT_DOUBLE_EQ(scaled.mean, 3.0 * est.mean);
  EXPECT_DOUBLE_EQ(scaled.var_of_mean, 9.0 * est.var_of_mean);
  // Scaling must not change the degrees of freedom.
  EXPECT_NEAR(scaled.dof(), est.dof(), 1e-9);
}

TEST(MeanEstimate, RequiresTwoSamples) {
  Summary s;
  s.add(1.0);
  EXPECT_DEATH((void)MeanEstimate::from_summary(s), "two samples");
}

}  // namespace
}  // namespace pathsel::stats
