#include "stats/quantile.h"

#include <vector>

#include <gtest/gtest.h>

namespace pathsel::stats {
namespace {

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 7.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 3.0);
}

TEST(Quantile, MedianOddCount) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Quantile, MedianEvenCountInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Quantile, LinearInterpolationType7) {
  // R's default (type 7): quantile(c(10,20,30,40), 0.25) == 17.5.
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 17.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 32.5);
}

TEST(Quantile, TenthPercentileOfUniformGrid) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_NEAR(quantile(v, 0.10), 10.0, 1e-12);
}

TEST(Quantile, SortedInputFastPath) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, EmptyAborts) {
  const std::vector<double> v;
  EXPECT_DEATH((void)quantile(v, 0.5), "empty");
}

TEST(Quantile, OutOfRangeLevelAborts) {
  const std::vector<double> v{1.0};
  EXPECT_DEATH((void)quantile(v, 1.5), "0,1");
}

class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, NonDecreasingInQ) {
  std::vector<double> v{9.0, 2.0, 7.0, 4.0, 6.0, 1.0, 8.0, 3.0, 5.0};
  const double q = GetParam();
  EXPECT_LE(quantile(v, q), quantile(v, std::min(1.0, q + 0.1)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantileMonotone,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace pathsel::stats
