// Property/invariant tests for the stats layer, over seeded random inputs:
// quantile agrees with sort-and-index, the t-test is antisymmetric under
// sample swap, the KS statistic stays in [0, 1] and is zero on identical
// samples, and histogram mass is conserved — including empty and
// single-sample edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/histogram.h"
#include "stats/ks.h"
#include "stats/quantile.h"
#include "stats/summary.h"
#include "stats/ttest.h"
#include "util/rng.h"

namespace pathsel::stats {
namespace {

std::vector<double> random_sample(Rng& rng, std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.lognormal(3.0, 1.0));
  return v;
}

TEST(QuantileInvariants, AgreesWithSortAndIndexAtExactOrderStatistics) {
  Rng rng{7};
  // Type-7: q = k / (n - 1) lands exactly on order statistic k.  Sizes are
  // 2^m + 1 so k / (n - 1) is exactly representable and q * (n - 1)
  // round-trips to k without an ulp of interpolation.
  for (const std::size_t m : {0u, 1u, 3u, 5u, 7u}) {
    const std::size_t n = (std::size_t{1} << m) + 1;
    std::vector<double> v = random_sample(rng, n);
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t k = 0; k < n; ++k) {
      const double q = static_cast<double>(k) / static_cast<double>(n - 1);
      EXPECT_EQ(quantile(v, q), sorted[k]) << "n=" << n << " k=" << k;
    }
  }
  // Arbitrary sizes agree up to interpolation rounding.
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.index(200);
    std::vector<double> v = random_sample(rng, n);
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t k = 0; k < n; ++k) {
      const double q = static_cast<double>(k) / static_cast<double>(n - 1);
      EXPECT_NEAR(quantile(v, q), sorted[k], 1e-9 * (1.0 + sorted[k]))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(QuantileInvariants, InterpolatedValuesAreBracketedByNeighbors) {
  Rng rng{11};
  std::vector<double> v = random_sample(rng, 101);
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double value = quantile(v, q);
    EXPECT_GE(value, sorted.front());
    EXPECT_LE(value, sorted.back());
  }
  // Monotone in q.
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(QuantileInvariants, SingleSampleEveryQuantileIsTheSample) {
  const std::vector<double> v{42.0};
  for (const double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(v, q), 42.0);
  }
  EXPECT_DOUBLE_EQ(median(v), 42.0);
}

TEST(TTestInvariants, AntisymmetricUnderSampleSwap) {
  Rng rng{13};
  for (int trial = 0; trial < 50; ++trial) {
    Summary a;
    Summary b;
    const std::size_t na = 2 + rng.index(40);
    const std::size_t nb = 2 + rng.index(40);
    for (std::size_t i = 0; i < na; ++i) a.add(rng.lognormal(3.0, 0.5));
    for (std::size_t i = 0; i < nb; ++i) b.add(rng.lognormal(3.2, 0.5));
    const auto ea = MeanEstimate::from_summary(a);
    const auto eb = MeanEstimate::from_summary(b);

    const TTestResult fwd = welch_ttest(ea, eb);
    const TTestResult rev = welch_ttest(eb, ea);
    EXPECT_DOUBLE_EQ(fwd.difference, -rev.difference);
    EXPECT_DOUBLE_EQ(fwd.half_width, rev.half_width);
    EXPECT_DOUBLE_EQ(fwd.dof, rev.dof);
    // Better/worse swap; indeterminate/zero are symmetric.
    if (fwd.verdict == Significance::kBetter) {
      EXPECT_EQ(rev.verdict, Significance::kWorse);
    } else if (fwd.verdict == Significance::kWorse) {
      EXPECT_EQ(rev.verdict, Significance::kBetter);
    } else {
      EXPECT_EQ(rev.verdict, fwd.verdict);
    }
  }
}

TEST(TTestInvariants, IdenticalEstimatesAreNeverSignificant) {
  Summary s;
  for (int i = 0; i < 20; ++i) s.add(10.0 + (i % 5));
  const auto e = MeanEstimate::from_summary(s);
  const TTestResult r = welch_ttest(e, e);
  EXPECT_DOUBLE_EQ(r.difference, 0.0);
  EXPECT_EQ(r.verdict, Significance::kIndeterminate);
}

TEST(KsInvariants, StatisticInUnitIntervalOnRandomSamples) {
  Rng rng{17};
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_sample(rng, 1 + rng.index(100));
    const auto b = random_sample(rng, 1 + rng.index(100));
    const KsResult r = ks_two_sample(a, b);
    EXPECT_GE(r.statistic, 0.0);
    EXPECT_LE(r.statistic, 1.0);
    EXPECT_GE(r.p_value, 0.0);
    EXPECT_LE(r.p_value, 1.0);
  }
}

TEST(KsInvariants, ZeroOnIdenticalSamples) {
  Rng rng{19};
  const auto a = random_sample(rng, 64);
  const KsResult r = ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsInvariants, SymmetricUnderSwapAndOneOnDisjointSupport) {
  Rng rng{23};
  const auto a = random_sample(rng, 50);
  const auto b = random_sample(rng, 70);
  const KsResult ab = ks_two_sample(a, b);
  const KsResult ba = ks_two_sample(b, a);
  EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);

  std::vector<double> lo;
  std::vector<double> hi;
  for (int i = 0; i < 10; ++i) {
    lo.push_back(static_cast<double>(i));
    hi.push_back(1000.0 + i);
  }
  EXPECT_DOUBLE_EQ(ks_two_sample(lo, hi).statistic, 1.0);
}

TEST(KsInvariants, SingleSampleEachSide) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0};
  const KsResult r = ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_DOUBLE_EQ(ks_two_sample(a, a).statistic, 0.0);
}

TEST(HistogramInvariants, MassIsConservedAndEqualsN) {
  Rng rng{29};
  Histogram h{0.0, 5.0, 40};
  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    // Include out-of-range values: clamping must not drop mass.
    h.add(rng.uniform(-50.0, 400.0));
  }
  EXPECT_DOUBLE_EQ(h.total_mass(), static_cast<double>(n));
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.mass_at(b);
  EXPECT_NEAR(sum, static_cast<double>(n), 1e-9);
}

TEST(HistogramInvariants, QuantilesAreMonotoneAndWithinSupport) {
  Rng rng{31};
  Histogram h{0.0, 1.0, 100};
  for (int i = 0; i < 1000; ++i) h.add(rng.lognormal(3.0, 0.8));
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(HistogramInvariants, SingleSampleQuantileFallsInItsBin) {
  Histogram h{0.0, 1.0, 10};
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.total_mass(), 1.0);
  EXPECT_GE(h.median(), 3.0);
  EXPECT_LE(h.median(), 4.0);
  EXPECT_NEAR(h.mean(), 3.5, 0.5);  // bin-center approximation
}

TEST(HistogramInvariants, ConvolutionNormalizesMassAndAddsMeans) {
  Rng rng{37};
  Histogram x{0.0, 2.0, 30};
  Histogram y{0.0, 2.0, 30};
  for (int i = 0; i < 200; ++i) x.add(rng.uniform(0.0, 50.0));
  for (int i = 0; i < 300; ++i) y.add(rng.uniform(0.0, 50.0));
  const Histogram z = Histogram::convolve(x, y);
  // convolve() normalizes to a probability distribution regardless of input
  // sample counts.
  EXPECT_DOUBLE_EQ(z.total_mass(), 1.0);
  // Bin (i, j) maps to bin i + j, whose center sits half a bin below the sum
  // of the input centers, so means add up to that exact constant shift.
  EXPECT_NEAR(z.mean(), x.mean() + y.mean() - 0.5 * z.bin_width(), 1e-9);
}

TEST(SummaryInvariants, EmptyAndSingleSampleEdgeCases) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

}  // namespace
}  // namespace pathsel::stats
