// Work-queue building blocks: the flock claim primitive and the CRC'd cell
// summary format.  The summary parser carries the same fuzz contract as the
// other on-disk readers — every single-bit corruption and every truncation
// of a real summary is rejected as a clean kParseError — and
// load_valid_summary distinguishes missing (kIoError), corrupt
// (kParseError), and stale-from-an-edited-grid (kInvalidArgument) states,
// which is the predicate the whole crash-reclaim protocol rests on.
#include "matrix/queue.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "matrix/cell.h"
#include "util/atomic_io.h"

namespace pathsel::matrix {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "matrix_queue_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CellSummary sample_summary() {
  CellSummary s;
  s.grid_fp = 0x1122334455667788ULL;
  s.cell_fp = 0x99aabbccddeeff00ULL;
  s.index = 3;
  s.dataset = "UW3";
  s.fault = 0.15;
  s.metric = "rtt";
  s.policy = "disjoint:2";
  s.min_samples = 3;
  s.seed = 1999;
  s.hosts = 20;
  s.measurements = 1200;
  s.completed = 1100;
  s.usable_edges = 150;
  s.pairs = 380;
  s.coverage = 0.71;
  s.better = 0.46;
  s.has_sig = false;
  s.found_full = 0.97;
  s.artifacts.push_back({"cells/cell-00003-99aabbccddeeff00/disjoint.tsv",
                         4242, 0xdeadbeef});
  return s;
}

TEST(MatrixQueueLock, ExclusiveWhileHeldReacquirableAfterRelease) {
  const std::string dir = fresh_dir("lock");
  const std::string path = dir + "/cell.lock";

  Result<FileLock> first = FileLock::try_acquire(path);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  ASSERT_TRUE(first.value().held());

  // A second open file description contends and comes back non-held (ok
  // status): "someone else owns this right now" is not an error.
  Result<FileLock> second = FileLock::try_acquire(path);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_FALSE(second.value().held());

  first.value().release();
  Result<FileLock> third = FileLock::try_acquire(path);
  ASSERT_TRUE(third.is_ok());
  EXPECT_TRUE(third.value().held());
}

TEST(MatrixQueueLock, DestructorAndMoveRelease) {
  const std::string dir = fresh_dir("lockmove");
  const std::string path = dir + "/cell.lock";
  {
    Result<FileLock> outer = FileLock::try_acquire(path);
    ASSERT_TRUE(outer.is_ok() && outer.value().held());
    FileLock moved = std::move(outer.value());
    EXPECT_TRUE(moved.held());
    EXPECT_FALSE(outer.value().held());
  }  // `moved` destroyed: lock must be gone
  Result<FileLock> again = FileLock::try_acquire(path);
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again.value().held());
}

TEST(MatrixQueueLock, UnreachableLockPathIsAnIoError) {
  const Result<FileLock> lock =
      FileLock::try_acquire("/nonexistent-dir-xyzzy/cell.lock");
  ASSERT_FALSE(lock.is_ok());
  EXPECT_EQ(lock.status().code(), ErrorCode::kIoError);
}

TEST(MatrixCellSummary, RoundTripsAndIsByteStable) {
  const CellSummary s = sample_summary();
  const std::string bytes = serialize_cell_summary(s);
  EXPECT_EQ(serialize_cell_summary(s), bytes) << "serialization not stable";

  const Result<CellSummary> parsed = parse_cell_summary(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const CellSummary& p = parsed.value();
  EXPECT_EQ(p.grid_fp, s.grid_fp);
  EXPECT_EQ(p.cell_fp, s.cell_fp);
  EXPECT_EQ(p.index, s.index);
  EXPECT_EQ(p.dataset, s.dataset);
  EXPECT_EQ(p.fault, s.fault);
  EXPECT_EQ(p.metric, s.metric);
  EXPECT_EQ(p.policy, s.policy);
  EXPECT_EQ(p.min_samples, s.min_samples);
  EXPECT_EQ(p.seed, s.seed);
  EXPECT_EQ(p.ok, s.ok);
  EXPECT_EQ(p.pairs, s.pairs);
  EXPECT_EQ(p.better, s.better);
  EXPECT_EQ(p.found_full, s.found_full);
  ASSERT_EQ(p.artifacts.size(), 1u);
  EXPECT_EQ(p.artifacts[0].rel_path, s.artifacts[0].rel_path);
  EXPECT_EQ(p.artifacts[0].size, s.artifacts[0].size);
  EXPECT_EQ(p.artifacts[0].crc, s.artifacts[0].crc);
  EXPECT_EQ(serialize_cell_summary(p), bytes) << "re-render differs";
}

TEST(MatrixCellSummary, DegradedRoundTrip) {
  CellSummary s = sample_summary();
  s.ok = false;
  s.error = "invalid argument: disjoint k=5 needs at least 7 hosts";
  s.artifacts.clear();
  const std::string bytes = serialize_cell_summary(s);
  const Result<CellSummary> parsed = parse_cell_summary(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_FALSE(parsed.value().ok);
  EXPECT_EQ(parsed.value().error, s.error);
  EXPECT_EQ(serialize_cell_summary(parsed.value()), bytes);
}

TEST(MatrixCellSummary, EveryBitFlipIsRejected) {
  const std::string good = serialize_cell_summary(sample_summary());
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = good;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      const Result<CellSummary> parsed = parse_cell_summary(corrupt);
      ASSERT_FALSE(parsed.is_ok())
          << "flip bit " << bit << " of byte " << byte << " was accepted";
      EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
    }
  }
}

TEST(MatrixCellSummary, EveryTruncationIsRejected) {
  const std::string good = serialize_cell_summary(sample_summary());
  for (std::size_t len = 0; len < good.size(); ++len) {
    const Result<CellSummary> parsed =
        parse_cell_summary(good.substr(0, len));
    ASSERT_FALSE(parsed.is_ok()) << "truncation to " << len << " accepted";
    EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
  }
}

TEST(MatrixCellSummary, TrailingGarbageIsRejected) {
  std::string padded = serialize_cell_summary(sample_summary());
  // Valid summary followed by junk: the trailing-crc scan must not be
  // fooled by the embedded (now non-final) crc line.
  padded += "extra line\n";
  const Result<CellSummary> parsed = parse_cell_summary(padded);
  EXPECT_FALSE(parsed.is_ok());
}

TEST(MatrixQueueValidation, MissingCorruptAndStaleAreDistinguished) {
  const std::string work = fresh_dir("validate");
  ASSERT_TRUE(ensure_directory(queue_dir(work)).is_ok());
  const CellSummary s = sample_summary();

  // Missing: kIoError.
  EXPECT_EQ(load_valid_summary(work, s.index, s.grid_fp, s.cell_fp)
                .status()
                .code(),
            ErrorCode::kIoError);

  // Valid: parses and matches.
  ASSERT_TRUE(write_file_atomic(cell_summary_path(work, s.index),
                                serialize_cell_summary(s))
                  .is_ok());
  EXPECT_TRUE(load_valid_summary(work, s.index, s.grid_fp, s.cell_fp).is_ok());

  // Stale: right file, wrong grid fingerprint (an edited grid).
  const Result<CellSummary> stale =
      load_valid_summary(work, s.index, s.grid_fp + 1, s.cell_fp);
  ASSERT_FALSE(stale.is_ok());
  EXPECT_EQ(stale.status().code(), ErrorCode::kInvalidArgument);

  // Corrupt: torn write.
  const std::string bytes = serialize_cell_summary(s);
  ASSERT_TRUE(write_file_atomic(cell_summary_path(work, s.index),
                                bytes.substr(0, bytes.size() / 2))
                  .is_ok());
  EXPECT_EQ(load_valid_summary(work, s.index, s.grid_fp, s.cell_fp)
                .status()
                .code(),
            ErrorCode::kParseError);
}

}  // namespace
}  // namespace pathsel::matrix
