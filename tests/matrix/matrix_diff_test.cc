// The matrix engine's differential layer, in-process.
//
// The headline property: the merged report is BYTE-identical whether the
// cells run sequentially (workers = 0), under one forked worker, or fanned
// out over 2 or 4 workers — and identical again when a worker is SIGKILL'd
// mid-cell and the run is finished under --resume.  (The CLI-level SIGKILL
// variant lives in tests/tools/kill_resume.sh; this suite forks real
// workers but injects the crash through MatrixOptions, so it runs
// everywhere.)  On top of that it pins the stale-state contract from both
// ends: an edited grid discards every cell summary on resume, and —
// one layer down — a campaign checkpoint written under one
// extra_fingerprint is rejected as stale when resumed under another, which
// is exactly the binding the matrix relies on to keep worker checkpoints
// from leaking across grid edits.
#include "matrix/engine.h"

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "matrix/grid.h"
#include "matrix/queue.h"
#include "meas/campaign.h"

namespace pathsel::matrix {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "matrix_diff_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Small but representative grid: two fault levels x two policy families
// (significance path and disjoint path), scale small enough that the whole
// suite stays in unit-test territory.  threads = 1 keeps the forked workers
// trivially fork-safe (a 1-thread pool spawns no worker threads).
GridConfig small_grid() {
  GridConfig g;
  g.name = "difftest";
  g.scale = 0.01;
  g.datasets = {"UW3"};
  g.faults = {0.0, 0.3};
  g.metrics = {core::Metric::kRtt};
  g.policies = {PolicySpec{},  // one-hop/auto
                PolicySpec{PolicyKind::kDisjoint, core::Kernel::kAuto, 2}};
  g.samples = {0};
  g.seeds = {1999};
  return g;
}

MatrixOptions options_for(const GridConfig& grid, const std::string& dir,
                          int workers) {
  MatrixOptions o;
  o.grid = grid;
  o.work_dir = dir;
  o.workers = workers;
  o.threads = 1;
  return o;
}

TEST(MatrixDiff, WorkerCountIsInvisibleInTheMergedReport) {
  const GridConfig grid = small_grid();
  std::string reference;
  for (const int workers : {0, 1, 2, 4}) {
    const std::string dir =
        fresh_dir("fanout_w" + std::to_string(workers));
    const MatrixReport report =
        run_matrix(options_for(grid, dir, workers));
    ASSERT_TRUE(report.status.is_ok())
        << "workers=" << workers << ": " << report.status.to_string();
    ASSERT_FALSE(report.report.empty());
    EXPECT_EQ(report.cells_total, 4u);
    if (reference.empty()) {
      reference = report.report;
    } else {
      EXPECT_EQ(report.report, reference)
          << "workers=" << workers << " diverged from the sequential run";
    }
    // The on-disk report carries the same bytes the caller got.
    std::ifstream is{report.report_path, std::ios::binary};
    const std::string on_disk{std::istreambuf_iterator<char>{is},
                              std::istreambuf_iterator<char>{}};
    EXPECT_EQ(on_disk, report.report);
  }
}

TEST(MatrixDiff, KilledWorkerIsReclaimedAndResumeMatches) {
  const GridConfig grid = small_grid();
  const std::string ref_dir = fresh_dir("crash_ref");
  const MatrixReport reference =
      run_matrix(options_for(grid, ref_dir, 0));
  ASSERT_TRUE(reference.status.is_ok()) << reference.status.to_string();

  // Kill the single worker after its second checkpoint write: collection is
  // mid-flight, so the checkpoint is the only thing that can make resume
  // byte-identical.
  const std::string dir = fresh_dir("crash");
  MatrixOptions crashed = options_for(grid, dir, 1);
  crashed.crash_after = 2;
  crashed.crash_worker = 0;
  const MatrixReport killed = run_matrix(crashed);
  ASSERT_FALSE(killed.status.is_ok());
  EXPECT_EQ(killed.status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(killed.worker_signal, SIGKILL);
  EXPECT_FALSE(std::filesystem::exists(report_path(dir)));

  MatrixOptions resumed = options_for(grid, dir, 1);
  resumed.resume = true;
  const MatrixReport finished = run_matrix(resumed);
  ASSERT_TRUE(finished.status.is_ok()) << finished.status.to_string();
  EXPECT_EQ(finished.report, reference.report)
      << "crash + resume diverged from the uninterrupted run";
}

TEST(MatrixDiff, TwoWorkersSurviveKillingOne) {
  const GridConfig grid = small_grid();
  const std::string ref_dir = fresh_dir("buddy_ref");
  const MatrixReport reference =
      run_matrix(options_for(grid, ref_dir, 0));
  ASSERT_TRUE(reference.status.is_ok());

  // Worker 0 dies mid-cell; worker 1 keeps draining the queue, and because
  // the dead worker's flock evaporates with it, worker 1 reclaims and
  // finishes the orphaned cell in the SAME run.  The run still reports the
  // death (exit contract), but every cell summary is on disk.
  const std::string dir = fresh_dir("buddy");
  MatrixOptions crashed = options_for(grid, dir, 2);
  crashed.crash_after = 2;
  crashed.crash_worker = 0;
  const MatrixReport killed = run_matrix(crashed);
  ASSERT_FALSE(killed.status.is_ok());
  EXPECT_EQ(killed.worker_signal, SIGKILL);

  const std::vector<CellSpec> cells = expand_cells(grid);
  const std::uint64_t grid_fp = grid_fingerprint(grid);
  std::size_t published = 0;
  for (const CellSpec& cell : cells) {
    if (load_valid_summary(dir, cell.index, grid_fp,
                           cell_fingerprint(grid_fp, cell))
            .is_ok()) {
      ++published;
    }
  }
  EXPECT_EQ(published, cells.size())
      << "the surviving worker did not reclaim the killed worker's cells";

  // Resume is then pure merge: nothing left to run.
  MatrixOptions resumed = options_for(grid, dir, 2);
  resumed.resume = true;
  const MatrixReport finished = run_matrix(resumed);
  ASSERT_TRUE(finished.status.is_ok()) << finished.status.to_string();
  EXPECT_EQ(finished.cells_reused, cells.size());
  EXPECT_EQ(finished.report, reference.report);
}

TEST(MatrixDiff, EditedGridDiscardsEveryCellOnResume) {
  GridConfig grid = small_grid();
  const std::string dir = fresh_dir("stale");
  const MatrixReport first = run_matrix(options_for(grid, dir, 0));
  ASSERT_TRUE(first.status.is_ok());

  grid.seeds = {2024};  // the edit
  MatrixOptions resumed = options_for(grid, dir, 0);
  resumed.resume = true;
  const MatrixReport second = run_matrix(resumed);
  ASSERT_TRUE(second.status.is_ok()) << second.status.to_string();
  EXPECT_EQ(second.cells_reused, 0u)
      << "summaries from the old grid were reused under the edited grid";
  EXPECT_NE(second.report, first.report);
  bool noted = false;
  for (const std::string& note : second.notes) {
    if (note.find("discarded summary") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "no diagnostic for the discarded stale summaries";
}

// The satellite pin, one layer down: CampaignOptions::extra_fingerprint is
// folded into the checkpoint fingerprint, so a checkpoint written under one
// value must be rejected as stale under any other — including the matrix
// case where the value is a grid fingerprint and the grid was edited
// between the crash and the resume.
TEST(MatrixDiff, CampaignCheckpointIsBoundToExtraFingerprint) {
  meas::CatalogConfig catalog;
  catalog.seed = 1999;
  catalog.scale = 0.005;

  CancelToken token;
  meas::CampaignOptions interrupted;
  interrupted.catalog = catalog;
  interrupted.datasets = {"UW3"};
  interrupted.output_dir = fresh_dir("fp_out");
  interrupted.checkpoint_dir = fresh_dir("fp_ck");
  interrupted.extra_fingerprint = 0xfeedface12345678ULL;
  interrupted.cancel = &token;
  interrupted.after_checkpoint = [&token](std::size_t writes) {
    if (writes >= 1) token.cancel();
  };
  const meas::CampaignReport stopped = meas::run_campaign(interrupted);
  ASSERT_FALSE(stopped.status.is_ok());

  // Same extra fingerprint: the checkpoint is honoured.
  meas::CampaignOptions same = interrupted;
  same.cancel = nullptr;
  same.after_checkpoint = nullptr;
  same.resume = true;
  const meas::CampaignReport resumed_same = meas::run_campaign(same);
  ASSERT_TRUE(resumed_same.status.is_ok())
      << resumed_same.status.to_string();
  EXPECT_EQ(resumed_same.resumed, (std::vector<std::string>{"UW3"}));

  // Different extra fingerprint (an edited grid): the checkpoint written
  // above must be discarded as stale, not silently merged.
  CancelToken token2;
  meas::CampaignOptions interrupted2 = interrupted;
  interrupted2.output_dir = fresh_dir("fp2_out");
  interrupted2.checkpoint_dir = fresh_dir("fp2_ck");
  interrupted2.cancel = &token2;
  interrupted2.after_checkpoint = [&token2](std::size_t writes) {
    if (writes >= 1) token2.cancel();
  };
  ASSERT_FALSE(meas::run_campaign(interrupted2).status.is_ok());

  meas::CampaignOptions edited = interrupted2;
  edited.cancel = nullptr;
  edited.after_checkpoint = nullptr;
  edited.resume = true;
  edited.extra_fingerprint = 0xfeedface12345679ULL;  // one bit off
  const meas::CampaignReport resumed_edited = meas::run_campaign(edited);
  ASSERT_TRUE(resumed_edited.status.is_ok())
      << resumed_edited.status.to_string();
  EXPECT_TRUE(resumed_edited.resumed.empty())
      << "a checkpoint from a different extra_fingerprint was resumed";
  bool noted = false;
  for (const std::string& note : resumed_edited.notes) {
    if (note.find("discarded checkpoint") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << "no diagnostic for the stale checkpoint";

  // Both paths still converge to the same dataset bytes: staleness affects
  // resumability, never results.
  std::ifstream a{same.output_dir + "/UW3.ds", std::ios::binary};
  std::ifstream b{edited.output_dir + "/UW3.ds", std::ios::binary};
  const std::string bytes_a{std::istreambuf_iterator<char>{a},
                            std::istreambuf_iterator<char>{}};
  const std::string bytes_b{std::istreambuf_iterator<char>{b},
                            std::istreambuf_iterator<char>{}};
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
}

}  // namespace
}  // namespace pathsel::matrix
