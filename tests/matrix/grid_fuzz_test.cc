// Fuzz/property tests for the scenario-grid parser.
//
// The parser's contract mirrors the binary results reader's: NO input —
// malformed key, empty axis, duplicate cell, absurd cross product,
// truncated file, random garbage — may crash it or trip UB; every rejection
// is a clean kInvalidArgument whose message names the offending line.  On
// top of the rejection catalogue this suite pins the identities the engine
// builds on: canonical round-trip stability, fingerprint sensitivity to
// every axis, and the fixed cell-expansion order.
#include "matrix/grid.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pathsel::matrix {
namespace {

constexpr char kFullGrid[] =
    "# exercise every section\n"
    "name = full\n"
    "scale = 0.25\n"
    "[datasets]\n"
    "values = UW3, D2\n"
    "[faults]\n"
    "values = 0, 0.15\n"
    "[metrics]\n"
    "values = rtt, loss\n"
    "[policies]\n"
    "values = one-hop, one-hop/dense, multi-hop, disjoint:2\n"
    "[samples]\n"
    "values = 0, 5\n"
    "[seeds]\n"
    "values = 1999, 7\n";

void expect_rejected(const std::string& text, const char* why) {
  const Result<GridConfig> parsed = parse_grid(text);
  ASSERT_FALSE(parsed.is_ok()) << why << "\n--- input ---\n" << text;
  EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument) << why;
  EXPECT_FALSE(parsed.status().message().empty()) << why;
}

TEST(GridParse, EmptyFileIsTheDefaultGrid) {
  const Result<GridConfig> parsed = parse_grid("");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const GridConfig& g = parsed.value();
  EXPECT_EQ(g.name, "matrix");
  EXPECT_EQ(g.cell_count(), 1u);
  EXPECT_EQ(g.datasets, std::vector<std::string>{"UW3"});
}

TEST(GridParse, FullGridParsesAndCounts) {
  const Result<GridConfig> parsed = parse_grid(kFullGrid);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().cell_count(), 2u * 2 * 2 * 4 * 2 * 2);
  EXPECT_EQ(parsed.value().policies[1].kernel, core::Kernel::kDense);
  EXPECT_EQ(parsed.value().policies[3].k, 2);
}

TEST(GridParse, CanonicalRoundTripIsAFixedPoint) {
  const Result<GridConfig> parsed = parse_grid(kFullGrid);
  ASSERT_TRUE(parsed.is_ok());
  const std::string canon = canonical_grid(parsed.value());
  const Result<GridConfig> reparsed = parse_grid(canon);
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string()
                                << "\n--- canonical ---\n" << canon;
  EXPECT_EQ(canonical_grid(reparsed.value()), canon);
  EXPECT_EQ(grid_fingerprint(reparsed.value()),
            grid_fingerprint(parsed.value()));
}

TEST(GridParse, CommentsAndWhitespaceAreInert) {
  const Result<GridConfig> a = parse_grid(kFullGrid);
  std::string spaced;
  for (const char* p = kFullGrid; *p != '\0'; ++p) {
    spaced += *p;
    if (*p == '\n') spaced += "   # interleaved comment\n\n";
  }
  const Result<GridConfig> b = parse_grid(spaced);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  EXPECT_EQ(canonical_grid(a.value()), canonical_grid(b.value()));
}

TEST(GridParse, RejectionCatalogue) {
  expect_rejected("bogus = 1\n", "unknown top-level key");
  expect_rejected("name = a\nname = b\n", "duplicate top-level key");
  expect_rejected("name =\n", "empty name");
  expect_rejected("name = spaced out\n", "name with spaces");
  expect_rejected("scale = 0\n", "scale below range");
  expect_rejected("scale = 1.5\n", "scale above range");
  expect_rejected("scale = abc\n", "non-numeric scale");
  expect_rejected("[bogus]\nvalues = 1\n", "unknown section");
  expect_rejected("[datasets\nvalues = UW3\n", "malformed section header");
  expect_rejected("[datasets]\nvalues = UW3\n[datasets]\nvalues = D2\n",
                  "duplicate section");
  expect_rejected("[datasets]\n", "section without values (truncated file)");
  expect_rejected("[datasets]\nvalues = UW3\n[faults]\n",
                  "trailing section without values");
  expect_rejected("[datasets]\nvalues =\n", "empty axis list");
  expect_rejected("[datasets]\nvalues = UW3,,D2\n", "empty axis item");
  expect_rejected("[datasets]\nvalues = NOPE\n", "unknown dataset");
  expect_rejected("[datasets]\nvalues = UW3, UW3\n", "duplicate cells");
  expect_rejected("[datasets]\nname = UW3\n", "non-values key in section");
  expect_rejected("values = UW3\n", "values outside any section");
  expect_rejected("[faults]\nvalues = -0.1\n", "fault below range");
  expect_rejected("[faults]\nvalues = 1.1\n", "fault above range");
  expect_rejected("[faults]\nvalues = 0.15, 0.15\n", "duplicate faults");
  expect_rejected("[metrics]\nvalues = bandwidth\n", "unsupported metric");
  expect_rejected("[policies]\nvalues = two-hop\n", "unknown policy");
  expect_rejected("[policies]\nvalues = disjoint:0\n", "disjoint k below 1");
  expect_rejected("[policies]\nvalues = disjoint:65\n", "disjoint k above 64");
  expect_rejected("[policies]\nvalues = disjoint:x\n", "non-numeric k");
  expect_rejected("[policies]\nvalues = one-hop/avx2\n", "unknown kernel");
  expect_rejected("[samples]\nvalues = -1\n", "negative min_samples");
  expect_rejected("[samples]\nvalues = 1000001\n", "absurd min_samples");
  expect_rejected("[seeds]\nvalues = -1\n", "negative seed");
  expect_rejected("[seeds]\nvalues = 99999999999999999999\n",
                  "seed overflow");
}

TEST(GridParse, AbsurdCrossProductIsRejectedUpFront) {
  // 9 faults x 8 datasets x 2 metrics x 4 policies x 2 samples x 5 seeds =
  // 11520 cells > kMaxGridCells.
  std::string text =
      "[datasets]\nvalues = D2, D2-NA, N2, N2-NA, UW1, UW3, UW4-A, UW4-B\n"
      "[metrics]\nvalues = rtt, loss\n"
      "[policies]\nvalues = one-hop, multi-hop, disjoint:2, disjoint:3\n"
      "[samples]\nvalues = 0, 5\n"
      "[seeds]\nvalues = 1, 2, 3, 4, 5\n"
      "[faults]\nvalues = 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8\n";
  expect_rejected(text, "cross product beyond kMaxGridCells");
}

TEST(GridParse, EveryTruncationIsCleanlyHandled) {
  const std::string full{kFullGrid};
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string cut = full.substr(0, len);
    const Result<GridConfig> parsed = parse_grid(cut);
    // A prefix that happens to end on a complete, valid line may parse; the
    // contract is only "no crash, and failures are kInvalidArgument".
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument)
          << "truncation at " << len;
    }
  }
}

TEST(GridParse, RandomGarbageNeverCrashes) {
  Rng rng{20260808};
  for (int round = 0; round < 200; ++round) {
    std::string junk;
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 399));
    for (std::size_t i = 0; i < len; ++i) {
      junk += static_cast<char>(rng.uniform_int(0, 255));
    }
    const Result<GridConfig> parsed = parse_grid(junk);
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
    }
  }
}

TEST(GridParse, MutatedRealGridNeverCrashes) {
  const std::string full{kFullGrid};
  Rng rng{42};
  for (int round = 0; round < 500; ++round) {
    std::string mutated = full;
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.index(mutated.size());
      mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    const Result<GridConfig> parsed = parse_grid(mutated);
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
    }
  }
}

TEST(GridIdentity, FingerprintSeesEveryAxis) {
  const GridConfig base = parse_grid(kFullGrid).value();
  const std::uint64_t fp = grid_fingerprint(base);

  GridConfig g = base;
  g.name = "other";
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.scale = 0.5;
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.datasets.pop_back();
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.faults[1] = 0.2;
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.metrics.pop_back();
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.policies[3].k = 3;
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.samples[1] = 6;
  EXPECT_NE(grid_fingerprint(g), fp);
  g = base;
  g.seeds[1] = 8;
  EXPECT_NE(grid_fingerprint(g), fp);
}

TEST(GridIdentity, CellExpansionOrderAndFingerprintsAreStable) {
  const GridConfig g = parse_grid(kFullGrid).value();
  const std::vector<CellSpec> cells = expand_cells(g);
  ASSERT_EQ(cells.size(), g.cell_count());
  // Seeds are the innermost axis; datasets the outermost.
  EXPECT_EQ(cells[0].seed, 1999u);
  EXPECT_EQ(cells[1].seed, 7u);
  EXPECT_EQ(cells[0].dataset, "UW3");
  EXPECT_EQ(cells[cells.size() - 1].dataset, "D2");
  const std::uint64_t fp = grid_fingerprint(g);
  std::vector<std::uint64_t> seen;
  for (const CellSpec& cell : cells) {
    EXPECT_EQ(cell.index, seen.size());
    const std::uint64_t cfp = cell_fingerprint(fp, cell);
    for (const std::uint64_t prior : seen) EXPECT_NE(prior, cfp);
    seen.push_back(cfp);
  }
}

TEST(GridIdentity, EffectiveMinSamplesIsScaleDerivedAtZero) {
  GridConfig g;
  g.scale = 0.25;
  CellSpec cell;
  cell.min_samples = 0;
  EXPECT_EQ(effective_min_samples(g, cell), 8);  // round(30 * 0.25)
  cell.min_samples = 5;
  EXPECT_EQ(effective_min_samples(g, cell), 5);
  g.scale = 0.01;
  cell.min_samples = 0;
  EXPECT_EQ(effective_min_samples(g, cell), 3);  // floor of 3
}

}  // namespace
}  // namespace pathsel::matrix
