// The parallel layer's contract: every analysis sweep produces bit-identical
// results at any thread count.  A generated 64-host world is measured once,
// then every ported sweep is run serially (threads = 1) and at 8 threads and
// compared field-for-field with exact floating-point equality.
#include <gtest/gtest.h>

#include "core/alternate.h"
#include "core/confidence.h"
#include "core/figures.h"
#include "core/path_table.h"
#include "meas/collector.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace pathsel {
namespace {

const meas::Dataset& sixty_four_host_dataset() {
  static const meas::Dataset dataset = [] {
    topo::GeneratorConfig gen;
    gen.seed = 64;
    gen.backbone_count = 4;
    gen.regional_count = 10;
    gen.stub_count = 64;
    gen.hosts_per_stub = 1;
    sim::Network network{topo::generate_topology(gen), sim::NetworkConfig{}};

    std::vector<topo::HostId> hosts;
    for (int i = 0; i < 64; ++i) hosts.push_back(topo::HostId{i});
    meas::CollectorConfig campaign;
    campaign.seed = 8;
    campaign.duration = Duration::hours(12);
    campaign.mean_interval = Duration::seconds(5);
    return meas::collect(network, hosts, campaign, "parallel-determinism");
  }();
  return dataset;
}

core::PathTable build_table(int threads) {
  core::BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  opt.threads = threads;
  return core::PathTable::build(sixty_four_host_dataset(), opt);
}

void expect_identical_tables(const core::PathTable& serial,
                             const core::PathTable& threaded) {
  ASSERT_EQ(serial.edges().size(), threaded.edges().size());
  for (std::size_t i = 0; i < serial.edges().size(); ++i) {
    const auto& s = serial.edges()[i];
    const auto& t = threaded.edges()[i];
    EXPECT_EQ(s.a, t.a);
    EXPECT_EQ(s.b, t.b);
    EXPECT_EQ(s.invocations, t.invocations);
    EXPECT_EQ(s.rtt.count(), t.rtt.count());
    EXPECT_EQ(s.rtt.mean(), t.rtt.mean());
    EXPECT_EQ(s.loss.count(), t.loss.count());
    EXPECT_EQ(s.loss.mean(), t.loss.mean());
    EXPECT_EQ(s.rtt_samples, t.rtt_samples);
    EXPECT_EQ(s.as_path, t.as_path);
    if (s.rtt.count() > 1) {
      EXPECT_EQ(s.rtt.variance(), t.rtt.variance());
    }
  }
}

void expect_identical_results(const std::vector<core::PairResult>& serial,
                              const std::vector<core::PairResult>& threaded) {
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& t = threaded[i];
    EXPECT_EQ(s.a, t.a);
    EXPECT_EQ(s.b, t.b);
    EXPECT_EQ(s.default_value, t.default_value);
    EXPECT_EQ(s.alternate_value, t.alternate_value);
    EXPECT_EQ(s.via, t.via);
    EXPECT_EQ(s.default_estimate.mean, t.default_estimate.mean);
    EXPECT_EQ(s.default_estimate.var_of_mean, t.default_estimate.var_of_mean);
    EXPECT_EQ(s.default_estimate.dof_denom, t.default_estimate.dof_denom);
    EXPECT_EQ(s.alternate_estimate.mean, t.alternate_estimate.mean);
    EXPECT_EQ(s.alternate_estimate.var_of_mean,
              t.alternate_estimate.var_of_mean);
    EXPECT_EQ(s.alternate_estimate.dof_denom, t.alternate_estimate.dof_denom);
  }
}

TEST(ParallelDeterminism, DatasetIsLargeEnoughToExerciseThreading) {
  const auto table = build_table(1);
  // The sweeps fall back to the serial path for tiny inputs; this world must
  // be big enough that 8-thread runs actually run threaded.
  EXPECT_GT(table.edges().size(), 64u);
}

TEST(ParallelDeterminism, PathTableBuildMatchesSerial) {
  const auto serial = build_table(1);
  expect_identical_tables(serial, build_table(8));
  expect_identical_tables(serial, build_table(3));
}

TEST(ParallelDeterminism, BestAlternatesMatchSerial) {
  const auto table = build_table(1);
  for (const auto metric : {core::Metric::kRtt, core::Metric::kLoss}) {
    core::AnalyzerOptions serial_opt;
    serial_opt.metric = metric;
    serial_opt.threads = 1;
    core::AnalyzerOptions threaded_opt = serial_opt;
    threaded_opt.threads = 8;
    expect_identical_results(core::analyze_alternate_paths(table, serial_opt),
                             core::analyze_alternate_paths(table, threaded_opt));
  }
}

TEST(ParallelDeterminism, OneHopSweepMatchesSerial) {
  const auto table = build_table(1);
  core::AnalyzerOptions serial_opt;
  serial_opt.max_intermediate_hosts = 1;
  serial_opt.threads = 1;
  core::AnalyzerOptions threaded_opt = serial_opt;
  threaded_opt.threads = 8;
  expect_identical_results(core::analyze_alternate_paths(table, serial_opt),
                           core::analyze_alternate_paths(table, threaded_opt));
}

TEST(ParallelDeterminism, ConfidenceSweepsMatchSerial) {
  const auto table = build_table(1);
  core::AnalyzerOptions opt;
  opt.threads = 1;
  const auto results = core::analyze_alternate_paths(table, opt);

  const auto serial_tally = core::classify_significance(results, 0.95, 1);
  const auto threaded_tally = core::classify_significance(results, 0.95, 8);
  EXPECT_EQ(serial_tally.pairs, threaded_tally.pairs);
  EXPECT_EQ(serial_tally.better, threaded_tally.better);
  EXPECT_EQ(serial_tally.worse, threaded_tally.worse);
  EXPECT_EQ(serial_tally.indeterminate, threaded_tally.indeterminate);
  EXPECT_EQ(serial_tally.zero, threaded_tally.zero);

  const auto serial_ci = core::confidence_cdf(results, 0.95, 1);
  const auto threaded_ci = core::confidence_cdf(results, 0.95, 8);
  ASSERT_EQ(serial_ci.size(), threaded_ci.size());
  for (std::size_t i = 0; i < serial_ci.size(); ++i) {
    EXPECT_EQ(serial_ci[i].difference, threaded_ci[i].difference);
    EXPECT_EQ(serial_ci[i].fraction, threaded_ci[i].fraction);
    EXPECT_EQ(serial_ci[i].half_width, threaded_ci[i].half_width);
  }
}

TEST(ParallelDeterminism, FigureCdfsMatchSerial) {
  const auto table = build_table(1);
  core::AnalyzerOptions opt;
  opt.threads = 1;
  const auto results = core::analyze_alternate_paths(table, opt);

  const auto serial_cdf = core::improvement_cdf(results, 1);
  const auto threaded_cdf = core::improvement_cdf(results, 8);
  ASSERT_EQ(serial_cdf.size(), threaded_cdf.size());
  const auto sv = serial_cdf.sorted_values();
  const auto tv = threaded_cdf.sorted_values();
  for (std::size_t i = 0; i < sv.size(); ++i) EXPECT_EQ(sv[i], tv[i]);

  EXPECT_EQ(core::fraction_improved(std::span<const core::PairResult>{results}, 1),
            core::fraction_improved(std::span<const core::PairResult>{results}, 8));
}

}  // namespace
}  // namespace pathsel
