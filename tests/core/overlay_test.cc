#include "core/overlay.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace pathsel::core {
namespace {

sim::Network make_network(std::uint64_t seed) {
  topo::GeneratorConfig g;
  g.seed = seed;
  g.backbone_count = 4;
  g.regional_count = 10;
  g.stub_count = 24;
  g.rate_limited_host_fraction = 0.0;
  sim::NetworkConfig cfg;
  cfg.seed = seed;
  cfg.measurement_failure_rate = 0.0;
  return sim::Network{topo::generate_topology(g), cfg};
}

std::vector<topo::HostId> first_hosts(int n) {
  std::vector<topo::HostId> out;
  for (int i = 0; i < n; ++i) out.push_back(topo::HostId{i});
  return out;
}

SimTime noon() { return SimTime::start() + Duration::hours(12); }

TEST(Overlay, EstimatesEmptyBeforeProbe) {
  const auto net = make_network(1);
  OverlayMesh mesh{net, first_hosts(6), OverlayConfig{}};
  EXPECT_FALSE(mesh.estimate(topo::HostId{0}, topo::HostId{1}).has_value());
}

TEST(Overlay, ProbePopulatesEstimates) {
  const auto net = make_network(2);
  OverlayMesh mesh{net, first_hosts(6), OverlayConfig{}};
  mesh.probe(noon());
  int valid = 0;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      if (mesh.estimate(topo::HostId{i}, topo::HostId{j}).has_value()) ++valid;
    }
  }
  EXPECT_EQ(valid, 15);
}

TEST(Overlay, EstimateTracksGroundTruthRoughly) {
  const auto net = make_network(3);
  OverlayMesh mesh{net, first_hosts(6), OverlayConfig{}};
  for (int k = 0; k < 5; ++k) {
    mesh.probe(noon() + Duration::minutes(k * 10));
  }
  const auto est = mesh.estimate(topo::HostId{0}, topo::HostId{3});
  ASSERT_TRUE(est.has_value());
  OverlayRoute direct;
  direct.src = topo::HostId{0};
  direct.dst = topo::HostId{3};
  const double truth = mesh.ground_truth(direct, noon() + Duration::minutes(40));
  EXPECT_NEAR(*est, truth, truth * 0.5 + 5.0);
}

TEST(Overlay, RouteFallsBackToDirectWithoutEstimates) {
  const auto net = make_network(4);
  OverlayMesh mesh{net, first_hosts(6), OverlayConfig{}};
  const auto r = mesh.route(topo::HostId{0}, topo::HostId{1});
  EXPECT_FALSE(r.detoured());
}

TEST(Overlay, DetourOnlyWhenPredictedGainBeatsHysteresis) {
  const auto net = make_network(5);
  OverlayConfig strict;
  strict.hysteresis = 0.95;  // essentially never detour
  OverlayMesh mesh{net, first_hosts(10), strict};
  for (int k = 0; k < 3; ++k) mesh.probe(noon() + Duration::minutes(k * 10));
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_FALSE(mesh.route(topo::HostId{i}, topo::HostId{j}).detoured());
    }
  }
}

TEST(Overlay, ZeroHysteresisDetoursWheneverPredictedBetter) {
  const auto net = make_network(6);
  OverlayConfig loose;
  loose.hysteresis = 0.0;
  OverlayMesh mesh{net, first_hosts(10), loose};
  for (int k = 0; k < 3; ++k) mesh.probe(noon() + Duration::minutes(k * 10));
  std::size_t detours = 0;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      const auto r = mesh.route(topo::HostId{i}, topo::HostId{j});
      if (r.detoured()) {
        ++detours;
        EXPECT_LT(r.predicted, r.predicted_direct);
      }
    }
  }
  EXPECT_GT(detours, 0u);
}

TEST(Overlay, RelayBudgetRespected) {
  const auto net = make_network(7);
  OverlayConfig cfg;
  cfg.max_relays = 2;
  cfg.hysteresis = 0.0;
  OverlayMesh mesh{net, first_hosts(10), cfg};
  for (int k = 0; k < 3; ++k) mesh.probe(noon() + Duration::minutes(k * 10));
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      const auto r = mesh.route(topo::HostId{i}, topo::HostId{j});
      EXPECT_LE(r.relays.size(), 2u);
    }
  }
}

TEST(Overlay, MoreRelaysNeverWorsenPrediction) {
  const auto net = make_network(8);
  OverlayConfig one;
  one.max_relays = 1;
  one.hysteresis = 0.0;
  OverlayConfig two;
  two.max_relays = 2;
  two.hysteresis = 0.0;
  OverlayMesh mesh1{net, first_hosts(10), one};
  OverlayMesh mesh2{net, first_hosts(10), two};
  for (int k = 0; k < 3; ++k) {
    mesh1.probe(noon() + Duration::minutes(k * 10));
    mesh2.probe(noon() + Duration::minutes(k * 10));
  }
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      const auto r1 = mesh1.route(topo::HostId{i}, topo::HostId{j});
      const auto r2 = mesh2.route(topo::HostId{i}, topo::HostId{j});
      EXPECT_LE(r2.predicted, r1.predicted + 1e-9);
    }
  }
}

TEST(Overlay, GroundTruthComposesLegs) {
  const auto net = make_network(9);
  OverlayMesh mesh{net, first_hosts(6), OverlayConfig{}};
  OverlayRoute direct;
  direct.src = topo::HostId{0};
  direct.dst = topo::HostId{2};
  OverlayRoute relayed = direct;
  relayed.relays = {topo::HostId{4}};
  const double d = mesh.ground_truth(direct, noon());
  const double r = mesh.ground_truth(relayed, noon());
  OverlayRoute leg1{topo::HostId{0}, topo::HostId{4}, {}, 0, 0};
  OverlayRoute leg2{topo::HostId{4}, topo::HostId{2}, {}, 0, 0};
  EXPECT_NEAR(r,
              mesh.ground_truth(leg1, noon()) + mesh.ground_truth(leg2, noon()),
              1e-9);
  EXPECT_GT(d, 0.0);
}

TEST(Overlay, EvaluateImprovesOrMatchesDirect) {
  const auto net = make_network(10);
  OverlayConfig cfg;
  cfg.probe_interval = Duration::minutes(30);
  cfg.hysteresis = 0.05;
  OverlayMesh mesh{net, first_hosts(10), cfg};
  const auto report =
      mesh.evaluate(SimTime::start() + Duration::hours(8), Duration::hours(6));
  EXPECT_GT(report.decisions, 0u);
  // With hysteresis, overlay routing should not be worse than direct on
  // average (stale estimates can cost a little; allow 2% slack).
  EXPECT_LT(report.overlay_metric.mean(),
            report.direct_metric.mean() * 1.02);
  EXPECT_GE(report.detour_fraction(), 0.0);
  EXPECT_LE(report.detour_fraction(), 1.0);
}

TEST(Overlay, LossMetricRouting) {
  const auto net = make_network(11);
  OverlayConfig cfg;
  cfg.metric = Metric::kLoss;
  cfg.hysteresis = 0.0;
  OverlayMesh mesh{net, first_hosts(8), cfg};
  for (int k = 0; k < 3; ++k) mesh.probe(noon() + Duration::minutes(k * 10));
  const auto r = mesh.route(topo::HostId{0}, topo::HostId{5});
  EXPECT_GE(r.predicted, 0.0);
  EXPECT_LE(r.predicted, 1.0);
  OverlayRoute direct;
  direct.src = topo::HostId{0};
  direct.dst = topo::HostId{5};
  const double truth = mesh.ground_truth(direct, noon());
  EXPECT_GE(truth, 0.0);
  EXPECT_LE(truth, 1.0);
}

TEST(Overlay, InvalidConfigsAbort) {
  const auto net = make_network(12);
  OverlayConfig bad;
  bad.metric = Metric::kPropagation;
  EXPECT_DEATH((OverlayMesh{net, first_hosts(6), bad}), "RTT or loss");
  OverlayConfig zero_relays;
  zero_relays.max_relays = 0;
  EXPECT_DEATH((OverlayMesh{net, first_hosts(6), zero_relays}), "budget");
  EXPECT_DEATH((OverlayMesh{net, first_hosts(2), OverlayConfig{}}),
               "three members");
}

TEST(Overlay, NonMemberRouteAborts) {
  const auto net = make_network(13);
  OverlayMesh mesh{net, first_hosts(6), OverlayConfig{}};
  EXPECT_DEATH((void)mesh.route(topo::HostId{0}, topo::HostId{20}),
               "not an overlay member");
}

}  // namespace
}  // namespace pathsel::core
