#include "core/coverage.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

// Triangle with enough samples everywhere plus one thin extra edge and one
// recorded failure.
meas::Dataset triangle_dataset() {
  auto ds = test::make_dataset(4);
  test::add_invocations(ds, 0, 1, 10.0, 5);
  test::add_invocations(ds, 1, 2, 20.0, 5);
  test::add_invocations(ds, 0, 2, 50.0, 5);
  test::add_invocations(ds, 0, 3, 30.0, 1);  // under the min_samples filter
  meas::Measurement failed;
  failed.src = topo::HostId{1};
  failed.dst = topo::HostId{3};
  failed.completed = false;
  failed.failure = meas::FailureReason::kEndpointDown;
  failed.attempts = 3;
  ds.measurements.push_back(failed);
  return ds;
}

TEST(Coverage, SummarizeCounts) {
  const auto ds = triangle_dataset();
  const auto table = PathTable::build(ds, test::min_samples(2));
  const CoverageSummary c = summarize_coverage(ds, table);
  EXPECT_EQ(c.hosts, 4u);
  EXPECT_EQ(c.potential_pairs, 12u);
  EXPECT_EQ(c.attempted_pairs, 5u);  // 4 completed pairs + the failed one
  EXPECT_EQ(c.covered_pairs, 4u);
  EXPECT_EQ(c.measured_edges, 4u);
  EXPECT_EQ(c.usable_edges, 3u);  // 0-3 has one sample, filtered out
  EXPECT_EQ(c.under_sampled_edges, 1u);
  EXPECT_EQ(c.completed, 16u);
  EXPECT_EQ(c.attempts, 16u + 3u);  // the failure spent three attempts
  EXPECT_EQ(c.failures_by_reason[static_cast<std::size_t>(
                meas::FailureReason::kEndpointDown)],
            1u);
  EXPECT_NEAR(c.coverage(), 4.0 / 12.0, 1e-12);
  // The analysis split is only known to analyze_with_coverage.
  EXPECT_EQ(c.analyzable_edges, 0u);
  EXPECT_EQ(c.disconnected_edges, 0u);
}

TEST(Coverage, AnalyzeFillsDegradationSplit) {
  const auto ds = triangle_dataset();
  const auto result = analyze_with_coverage(ds, test::min_samples(2), {});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const DegradedAnalysis& analysis = result.value();
  // All three triangle edges have a two-hop alternate.
  EXPECT_EQ(analysis.results.size(), 3u);
  EXPECT_EQ(analysis.coverage.analyzable_edges, 3u);
  EXPECT_EQ(analysis.coverage.disconnected_edges, 0u);
}

TEST(Coverage, DisconnectedEdgesCounted) {
  // A triangle plus an isolated pendant edge 3-4: removing 3-4 disconnects
  // the pair, so it shows up as disconnected rather than analyzable.
  auto ds = test::make_dataset(5);
  test::add_invocations(ds, 0, 1, 10.0, 5);
  test::add_invocations(ds, 1, 2, 20.0, 5);
  test::add_invocations(ds, 0, 2, 50.0, 5);
  test::add_invocations(ds, 3, 4, 40.0, 5);
  const auto result = analyze_with_coverage(ds, test::min_samples(2), {});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().coverage.usable_edges, 4u);
  EXPECT_EQ(result.value().coverage.analyzable_edges, 3u);
  EXPECT_EQ(result.value().coverage.disconnected_edges, 1u);
}

TEST(Coverage, TooFewHostsIsInsufficientData) {
  const auto ds = test::make_dataset(1);
  const auto result = analyze_with_coverage(ds, test::min_samples(1), {});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInsufficientData);
}

TEST(Coverage, EmptyPathGraphIsInsufficientData) {
  auto ds = test::make_dataset(4);
  test::add_invocations(ds, 0, 1, 10.0, 2);
  const auto result = analyze_with_coverage(ds, test::min_samples(30), {});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInsufficientData);
  EXPECT_FALSE(result.status().message().empty());
}

TEST(Coverage, TcpDatasetIsInvalidForProbeMetrics) {
  auto ds = test::make_dataset(3);
  ds.kind = meas::MeasurementKind::kTcpTransfer;
  test::add_transfer(ds, 0, 1, 100.0, 50.0, 0.01);
  const auto result = analyze_with_coverage(ds, test::min_samples(1), {});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Coverage, PropagationWithoutSamplesIsInvalid) {
  const auto ds = triangle_dataset();
  AnalyzerOptions opts;
  opts.metric = Metric::kPropagation;
  const auto result = analyze_with_coverage(ds, test::min_samples(2), opts);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

// min_samples = 1 plus the D2-style first-sample-only loss filter leaves an
// edge whose loss summary holds a single sample; the estimate falls back to
// a zero-variance point instead of aborting in MeanEstimate::from_summary.
TEST(Coverage, SingleSampleLossEdgesAnalyzeWithoutAborting) {
  auto ds = test::make_dataset(3);
  ds.first_sample_loss_only = true;
  test::add_invocations(ds, 0, 1, 10.0, 3);
  test::add_invocations(ds, 1, 2, 20.0, 3);
  test::add_invocation(ds, 0, 2, {50.0, 50.0, 50.0});  // loss.count() == 1
  AnalyzerOptions opts;
  opts.metric = Metric::kLoss;
  const auto result = analyze_with_coverage(ds, test::min_samples(1), opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().results.size(), 3u);
  for (const auto& pair : result.value().results) {
    EXPECT_GE(pair.alternate_value, 0.0);
  }
}

TEST(Coverage, StatusToStringNamesTheCode) {
  const Status s = Status::error(ErrorCode::kInsufficientData, "too sparse");
  EXPECT_NE(s.to_string().find("insufficient"), std::string::npos);
  EXPECT_NE(s.to_string().find("too sparse"), std::string::npos);
  EXPECT_EQ(Status::ok().to_string(), "ok");
}

}  // namespace
}  // namespace pathsel::core
