// Fuzz-style corpus test for the binary results reader.
//
// The reader's contract is that NO byte sequence crashes it or trips UB —
// every malformed input comes back as a clean kParseError Status.  This
// suite drives that contract mechanically: every single-bit corruption of a
// real serialized file (CRC-32 detects all of them, so each must be
// rejected), every truncation length, and a seeded storm of multi-byte
// corruptions and random garbage.  CI runs it under ASan/UBSan, where any
// out-of-bounds read or absurd allocation the parser's guards miss becomes
// a hard failure.
#include "core/result_columns.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "topo/ids.h"
#include "util/rng.h"

namespace pathsel::core {
namespace {

// Small but structurally complete corpus: two column sets, mixed hop counts
// (kNoRelay pairs included), a few hundred bytes so the bit-flip sweep stays
// fast.
std::string make_corpus() {
  std::vector<PairResult> pairs;
  for (int i = 0; i < 4; ++i) {
    PairResult r;
    r.a = topo::HostId{i};
    r.b = topo::HostId{i + 1};
    r.default_value = 10.0 * i;
    r.alternate_value = 5.0 * i;
    r.default_estimate = {10.0 * i, 0.5, 0.01};
    r.alternate_estimate = {5.0 * i, 0.25, 0.02};
    for (int h = 0; h < i; ++h) r.via.push_back(topo::HostId{100 + h});
    pairs.push_back(std::move(r));
  }
  std::vector<ResultColumns> sets;
  sets.push_back(from_pairs(pairs, Metric::kRtt));
  sets.push_back(from_pairs(pairs, Metric::kLoss));
  return serialize_result_columns(sets);
}

TEST(ResultColumnsFuzz, CleanParseSanityCheck) {
  const std::string good = make_corpus();
  const auto parsed = parse_result_columns(good);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().size(), 2u);
}

TEST(ResultColumnsFuzz, EverySingleBitFlipIsRejectedCleanly) {
  const std::string good = make_corpus();
  std::string mutated = good;
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[byte] =
          static_cast<char>(static_cast<std::uint8_t>(good[byte]) ^
                            (1u << bit));
      const auto parsed = parse_result_columns(mutated);
      // CRC-32 detects every single-bit error (and a flip inside the stored
      // CRC itself mismatches the recomputed one), so no flip may parse.
      ASSERT_FALSE(parsed.is_ok())
          << "bit " << bit << " of byte " << byte << " parsed successfully";
      EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
      EXPECT_FALSE(parsed.status().message().empty());
    }
    mutated[byte] = good[byte];
  }
}

TEST(ResultColumnsFuzz, EveryTruncationIsRejectedCleanly) {
  const std::string good = make_corpus();
  for (std::size_t len = 0; len < good.size(); ++len) {
    const auto parsed =
        parse_result_columns(std::string_view{good}.substr(0, len));
    ASSERT_FALSE(parsed.is_ok()) << "truncation to " << len << " bytes parsed";
    EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
    EXPECT_FALSE(parsed.status().message().empty());
  }
}

TEST(ResultColumnsFuzz, RandomCorruptionStormNeverCrashes) {
  const std::string good = make_corpus();
  Rng rng{0xfaded0facu};
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = good;
    const auto edits = static_cast<std::size_t>(rng.uniform_int(1, 16));
    for (std::size_t e = 0; e < edits; ++e) {
      mutated[rng.index(mutated.size())] =
          static_cast<char>(rng.uniform_int(0, 255));
    }
    const auto parsed = parse_result_columns(mutated);
    // A multi-byte corruption can in principle collide with the CRC, but it
    // must never crash; a successful parse must at least re-serialize.
    if (parsed.is_ok()) {
      (void)serialize_result_columns(parsed.value());
    } else {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST(ResultColumnsFuzz, RandomGarbageNeverCrashes) {
  Rng rng{0xdeadbeadu};
  for (int round = 0; round < 500; ++round) {
    std::string garbage(static_cast<std::size_t>(rng.uniform_int(0, 512)),
                        '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    const auto parsed = parse_result_columns(garbage);
    if (!parsed.is_ok()) {
      EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace pathsel::core
