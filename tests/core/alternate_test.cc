#include "core/alternate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::add_invocations;
using test::make_dataset;

// Triangle: direct 0-1 slow (100 ms), detour 0-2-1 fast (30 + 30 ms).
PathTable triangle_table() {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 100.0, 5);
  add_invocations(ds, 0, 2, 30.0, 5);
  add_invocations(ds, 2, 1, 30.0, 5);
  return PathTable::build(ds, test::min_samples(1));
}

TEST(Alternate, FindsObviousDetour) {
  const auto results =
      analyze_alternate_paths(triangle_table(), AnalyzerOptions{});
  // All three pairs have alternates (the triangle is 2-connected).
  ASSERT_EQ(results.size(), 3u);
  const auto* r01 = &results[0];
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) r01 = &r;
  }
  EXPECT_DOUBLE_EQ(r01->default_value, 100.0);
  EXPECT_DOUBLE_EQ(r01->alternate_value, 60.0);
  ASSERT_EQ(r01->via.size(), 1u);
  EXPECT_EQ(r01->via[0], topo::HostId{2});
  EXPECT_DOUBLE_EQ(r01->improvement(), 40.0);
  EXPECT_NEAR(r01->ratio(), 100.0 / 60.0, 1e-12);
}

TEST(Alternate, DetourWorseForGoodPairs) {
  const auto results =
      analyze_alternate_paths(triangle_table(), AnalyzerOptions{});
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{2}) {
      // Alternate 0-1-2 costs 130; direct is 30.
      EXPECT_DOUBLE_EQ(r.alternate_value, 130.0);
      EXPECT_LT(r.improvement(), 0.0);
    }
  }
}

TEST(Alternate, PairWithNoAlternateOmitted) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 100.0, 5);
  add_invocations(ds, 0, 2, 30.0, 5);
  // No 2-1 edge: removing 0-1 disconnects the pair.
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto results = analyze_alternate_paths(table, AnalyzerOptions{});
  for (const auto& r : results) {
    EXPECT_FALSE(r.a == topo::HostId{0} && r.b == topo::HostId{1});
  }
}

TEST(Alternate, MultiHopAlternateFound) {
  // Chain detour: 0-1 direct 100; 0-2 20, 2-3 20, 3-1 20 -> alt 60 via 2,3.
  auto ds = make_dataset(4);
  add_invocations(ds, 0, 1, 100.0, 5);
  add_invocations(ds, 0, 2, 20.0, 5);
  add_invocations(ds, 2, 3, 20.0, 5);
  add_invocations(ds, 3, 1, 20.0, 5);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto results = analyze_alternate_paths(table, AnalyzerOptions{});
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.alternate_value, 60.0);
      ASSERT_EQ(r.via.size(), 2u);
      EXPECT_EQ(r.via[0], topo::HostId{2});
      EXPECT_EQ(r.via[1], topo::HostId{3});
    }
  }
}

TEST(Alternate, HopLimitForcesWorseChoice) {
  // Same chain, but a mediocre one-hop alternative exists: 0-4 45, 4-1 45.
  auto ds = make_dataset(5);
  add_invocations(ds, 0, 1, 100.0, 5);
  add_invocations(ds, 0, 2, 20.0, 5);
  add_invocations(ds, 2, 3, 20.0, 5);
  add_invocations(ds, 3, 1, 20.0, 5);
  add_invocations(ds, 0, 4, 45.0, 5);
  add_invocations(ds, 4, 1, 45.0, 5);
  const auto table = PathTable::build(ds, test::min_samples(1));

  AnalyzerOptions unlimited;
  AnalyzerOptions one_hop;
  one_hop.max_intermediate_hosts = 1;
  for (const auto& r : analyze_alternate_paths(table, unlimited)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.alternate_value, 60.0);
    }
  }
  for (const auto& r : analyze_alternate_paths(table, one_hop)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.alternate_value, 90.0);
      EXPECT_EQ(r.via.size(), 1u);
      EXPECT_EQ(r.via[0], topo::HostId{4});
    }
  }
}

TEST(Alternate, LossComposesAsComplementProduct) {
  auto ds = make_dataset(3);
  // Direct 0-1: 50% loss.  Legs: 10% each -> composed 1 - 0.9^2 = 0.19.
  for (int i = 0; i < 10; ++i) {
    add_invocation(ds, 0, 1, {i < 5 ? 10.0 : -1.0, i < 5 ? 10.0 : -1.0,
                              i < 5 ? 10.0 : -1.0});
    add_invocation(ds, 0, 2, {10.0, 10.0, i < 3 ? -1.0 : 10.0});
    add_invocation(ds, 2, 1, {10.0, 10.0, i < 3 ? -1.0 : 10.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  AnalyzerOptions opt;
  opt.metric = Metric::kLoss;
  for (const auto& r : analyze_alternate_paths(table, opt)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.default_value, 0.5);
      EXPECT_NEAR(r.alternate_value, 1.0 - 0.9 * 0.9, 1e-12);
    }
  }
}

TEST(Alternate, ZeroLossEdgesComposeToZero) {
  auto ds = make_dataset(3);
  for (int i = 0; i < 4; ++i) {
    add_invocation(ds, 0, 1, {10.0, -1.0, 10.0});  // direct has loss
    add_invocation(ds, 0, 2, {10.0, 10.0, 10.0});
    add_invocation(ds, 2, 1, {10.0, 10.0, 10.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  AnalyzerOptions opt;
  opt.metric = Metric::kLoss;
  for (const auto& r : analyze_alternate_paths(table, opt)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.alternate_value, 0.0);
      EXPECT_GT(r.improvement(), 0.0);
    }
  }
}

TEST(Alternate, PropagationMetricUsesTenthPercentile) {
  auto ds = make_dataset(3);
  // Direct: samples 100..109 -> p10 ~ 100.9; legs constant 30.
  for (int i = 0; i < 10; ++i) {
    add_invocation(ds, 0, 1, {100.0 + i, 100.0 + i, 100.0 + i});
    add_invocation(ds, 0, 2, {30.0, 30.0, 30.0});
    add_invocation(ds, 2, 1, {30.0, 30.0, 30.0});
  }
  BuildOptions build;
  build.min_samples = 1;
  build.keep_samples = true;
  const auto table = PathTable::build(ds, build);
  AnalyzerOptions opt;
  opt.metric = Metric::kPropagation;
  for (const auto& r : analyze_alternate_paths(table, opt)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_NEAR(r.default_value, 100.9, 0.1);
      EXPECT_DOUBLE_EQ(r.alternate_value, 60.0);
    }
  }
}

TEST(Alternate, EstimatesCarryUncertainty) {
  const auto results =
      analyze_alternate_paths(triangle_table(), AnalyzerOptions{});
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.default_estimate.mean, r.default_value);
    EXPECT_NEAR(r.alternate_estimate.mean, r.alternate_value, 1e-9);
  }
}

TEST(Alternate, LossEstimateDeltaMethod) {
  auto ds = make_dataset(3);
  for (int i = 0; i < 20; ++i) {
    add_invocation(ds, 0, 1, {i % 2 == 0 ? -1.0 : 10.0, 10.0, 10.0});
    add_invocation(ds, 0, 2, {i % 4 == 0 ? -1.0 : 10.0, 10.0, 10.0});
    add_invocation(ds, 2, 1, {10.0, 10.0, 10.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  AnalyzerOptions opt;
  opt.metric = Metric::kLoss;
  for (const auto& r : analyze_alternate_paths(table, opt)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      // Composed variance must be positive and close to the sum of scaled
      // leg variances.
      EXPECT_GT(r.alternate_estimate.var_of_mean, 0.0);
      EXPECT_LT(r.alternate_estimate.var_of_mean,
                r.default_estimate.var_of_mean * 10.0);
    }
  }
}

TEST(Alternate, OneHopMatchesBruteForce) {
  // Random-ish table; verify Bellman-Ford one-hop equals explicit search.
  auto ds = make_dataset(6);
  int seed = 1;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      const double rtt = 20.0 + (seed = (seed * 31 + 7) % 97);
      add_invocations(ds, i, j, rtt, 3);
    }
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  AnalyzerOptions opt;
  opt.max_intermediate_hosts = 1;
  const auto results = analyze_alternate_paths(table, opt);
  for (const auto& r : results) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto h : table.hosts()) {
      if (h == r.a || h == r.b) continue;
      const auto* e1 = table.find(r.a, h);
      const auto* e2 = table.find(h, r.b);
      if (e1 == nullptr || e2 == nullptr) continue;
      best = std::min(best, e1->rtt.mean() + e2->rtt.mean());
    }
    EXPECT_NEAR(r.alternate_value, best, 1e-9);
  }
}

TEST(Alternate, EdgeMetricValueDispatch) {
  const auto table = triangle_table();
  const auto* e = table.find(topo::HostId{0}, topo::HostId{1});
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(edge_metric_value(*e, Metric::kRtt), 100.0);
  EXPECT_DOUBLE_EQ(edge_metric_value(*e, Metric::kLoss), 0.0);
}

TEST(Alternate, ComposeEmptyAborts) {
  EXPECT_DEATH((void)compose_metric({}, Metric::kRtt), "empty");
  EXPECT_DEATH((void)compose_estimate({}, Metric::kRtt), "empty");
}

TEST(Alternate, BoundedSearchRespectsHopBudget) {
  // Regression: the bounded Bellman-Ford used to keep a single parent array
  // across rounds, so a later-round improvement of an intermediate node
  // (here host 2, reached cheaply via 0-1-2) could splice an over-budget
  // path into the one-hop reconstruction — reporting 0-1-2-3 (cost 3) for a
  // sweep whose budget only allows 0-2-3 (cost 51).
  auto ds = make_dataset(4);
  add_invocations(ds, 0, 3, 100.0, 5);
  add_invocations(ds, 0, 1, 1.0, 5);
  add_invocations(ds, 1, 2, 1.0, 5);
  add_invocations(ds, 2, 3, 1.0, 5);
  add_invocations(ds, 0, 2, 50.0, 5);
  const auto table = PathTable::build(ds, test::min_samples(1));

  AnalyzerOptions one_hop;
  one_hop.max_intermediate_hosts = 1;
  one_hop.kernel = Kernel::kSearch;
  for (const auto& r : analyze_alternate_paths(table, one_hop)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{3}) {
      EXPECT_DOUBLE_EQ(r.alternate_value, 51.0);
      ASSERT_EQ(r.via.size(), 1u);
      EXPECT_EQ(r.via[0], topo::HostId{2});
    }
  }

  AnalyzerOptions two_hop;
  two_hop.max_intermediate_hosts = 2;
  for (const auto& r : analyze_alternate_paths(table, two_hop)) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{3}) {
      EXPECT_DOUBLE_EQ(r.alternate_value, 3.0);
      ASSERT_EQ(r.via.size(), 2u);
      EXPECT_EQ(r.via[0], topo::HostId{1});
      EXPECT_EQ(r.via[1], topo::HostId{2});
    }
  }
}

TEST(Alternate, DenseKernelRequiresOneHop) {
  AnalyzerOptions bad;
  bad.kernel = Kernel::kDense;  // max_intermediate_hosts left unbounded
  EXPECT_DEATH((void)analyze_alternate_paths(triangle_table(), bad),
               "max_intermediate_hosts");
}

}  // namespace
}  // namespace pathsel::core
