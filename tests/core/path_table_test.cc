#include "core/path_table.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::add_invocations;
using test::make_dataset;

TEST(PathTable, ComputesPerPathMeans) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 20.0, 30.0});
  add_invocation(ds, 0, 1, {40.0, 50.0, 60.0});
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  ASSERT_EQ(table.edges().size(), 1u);
  const PathEdge& e = table.edges()[0];
  EXPECT_DOUBLE_EQ(e.rtt.mean(), 35.0);
  EXPECT_EQ(e.rtt.count(), 6);
  EXPECT_EQ(e.invocations, 2);
  EXPECT_DOUBLE_EQ(e.loss.mean(), 0.0);
}

TEST(PathTable, CountsLossIndicators) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, -1.0, 30.0});  // one lost sample
  add_invocation(ds, 0, 1, {10.0, 20.0, 30.0});
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  const PathEdge& e = table.edges()[0];
  EXPECT_EQ(e.loss.count(), 6);
  EXPECT_NEAR(e.loss.mean(), 1.0 / 6.0, 1e-12);
  EXPECT_EQ(e.rtt.count(), 5);
}

TEST(PathTable, FirstSampleLossHeuristic) {
  auto ds = make_dataset(2);
  ds.first_sample_loss_only = true;
  add_invocation(ds, 0, 1, {10.0, -1.0, -1.0});  // losses on samples 2, 3
  add_invocation(ds, 0, 1, {-1.0, 20.0, 30.0});  // loss on sample 1
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  const PathEdge& e = table.edges()[0];
  // Only first samples count: one loss out of two.
  EXPECT_EQ(e.loss.count(), 2);
  EXPECT_DOUBLE_EQ(e.loss.mean(), 0.5);
  // RTT still uses every successful sample.
  EXPECT_EQ(e.rtt.count(), 3);
}

TEST(PathTable, MergesDirectionsIntoUndirectedEdge) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0});
  add_invocation(ds, 1, 0, {30.0, 30.0, 30.0});
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  ASSERT_EQ(table.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(table.edges()[0].rtt.mean(), 20.0);
  EXPECT_EQ(table.find(topo::HostId{0}, topo::HostId{1}),
            table.find(topo::HostId{1}, topo::HostId{0}));
}

TEST(PathTable, MinSamplesFilter) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 10.0, 30);
  add_invocations(ds, 0, 2, 10.0, 29);
  BuildOptions opt;
  opt.min_samples = 30;
  const auto table = PathTable::build(ds, opt);
  EXPECT_EQ(table.edges().size(), 1u);
  EXPECT_NE(table.find(topo::HostId{0}, topo::HostId{1}), nullptr);
  EXPECT_EQ(table.find(topo::HostId{0}, topo::HostId{2}), nullptr);
}

TEST(PathTable, IncompleteMeasurementsIgnored) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0});
  meas::Measurement failed;
  failed.src = topo::HostId{0};
  failed.dst = topo::HostId{1};
  failed.completed = false;
  ds.measurements.push_back(failed);
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  EXPECT_EQ(table.edges()[0].invocations, 1);
}

TEST(PathTable, FilterCallbackApplied) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0}, SimTime::start());
  add_invocation(ds, 0, 1, {90.0, 90.0, 90.0},
                 SimTime::start() + Duration::hours(5));
  BuildOptions opt;
  opt.min_samples = 1;
  opt.filter = [](const meas::Measurement& m) {
    return m.when < SimTime::start() + Duration::hours(1);
  };
  const auto table = PathTable::build(ds, opt);
  EXPECT_DOUBLE_EQ(table.edges()[0].rtt.mean(), 10.0);
}

TEST(PathTable, KeepSamplesRetainsRawValues) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 20.0, 30.0});
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  const auto table = PathTable::build(ds, opt);
  EXPECT_EQ(table.edges()[0].rtt_samples.size(), 3u);
}

TEST(PathTable, PropagationIsTenthPercentile) {
  auto ds = make_dataset(2);
  meas::Measurement m;
  for (int i = 1; i <= 33; ++i) {
    add_invocation(ds, 0, 1,
                   {static_cast<double>(i), static_cast<double>(i + 33),
                    static_cast<double>(i + 66)});
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  const auto table = PathTable::build(ds, opt);
  // Samples are 1..99; the 10th percentile ~ 10.8.
  EXPECT_NEAR(table.edges()[0].propagation_ms(), 10.8, 0.5);
}

TEST(PathTable, PropagationWithoutSamplesAborts) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 20.0, 30.0});
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  EXPECT_DEATH((void)table.edges()[0].propagation_ms(), "retained");
}

TEST(PathTable, AllSamplesLostPathDropped) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {-1.0, -1.0, -1.0});
  add_invocation(ds, 0, 1, {-1.0, -1.0, -1.0});
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  EXPECT_TRUE(table.edges().empty());
}

TEST(PathTable, AsPathStored) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0});
  ds.measurements.back().as_path = {topo::AsId{3}, topo::AsId{1}};
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  ASSERT_EQ(table.edges()[0].as_path.size(), 2u);
  EXPECT_EQ(table.edges()[0].as_path[0], topo::AsId{3});
}

TEST(PathTable, TcpDatasetPopulatesBandwidth) {
  auto ds = make_dataset(2);
  ds.kind = meas::MeasurementKind::kTcpTransfer;
  test::add_transfer(ds, 0, 1, 100.0, 80.0, 0.01);
  test::add_transfer(ds, 0, 1, 200.0, 90.0, 0.02);
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  const PathEdge& e = table.edges()[0];
  EXPECT_DOUBLE_EQ(e.bandwidth.mean(), 150.0);
  EXPECT_DOUBLE_EQ(e.tcp_rtt.mean(), 85.0);
  EXPECT_NEAR(e.tcp_loss.mean(), 0.015, 1e-12);
}

TEST(PathTable, WithoutHostsRemovesEdges) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 10.0, 2);
  add_invocations(ds, 0, 2, 10.0, 2);
  add_invocations(ds, 1, 2, 10.0, 2);
  BuildOptions opt;
  opt.min_samples = 1;
  const auto table = PathTable::build(ds, opt);
  EXPECT_EQ(table.edges().size(), 3u);
  const topo::HostId removed[] = {topo::HostId{2}};
  const auto reduced = table.without_hosts(removed);
  EXPECT_EQ(reduced.edges().size(), 1u);
  EXPECT_EQ(reduced.hosts().size(), 2u);
  EXPECT_EQ(reduced.find(topo::HostId{0}, topo::HostId{2}), nullptr);
  EXPECT_NE(reduced.find(topo::HostId{0}, topo::HostId{1}), nullptr);
}

TEST(PathTable, WithoutHostsReindexesConsistently) {
  // Removing hosts from the middle of the host list shifts every later
  // index; the reduced table's host_index/find/edge order must all agree
  // with the surviving data (the dense kernel leans on this mapping).
  auto ds = make_dataset(5);
  add_invocations(ds, 0, 1, 10.0, 2);
  add_invocations(ds, 0, 2, 11.0, 2);
  add_invocations(ds, 1, 3, 12.0, 2);
  add_invocations(ds, 2, 4, 13.0, 2);
  add_invocations(ds, 3, 4, 14.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  ASSERT_EQ(table.edges().size(), 5u);

  const topo::HostId removed[] = {topo::HostId{1}, topo::HostId{3}};
  const auto reduced = table.without_hosts(removed);

  // Hosts: original order minus the removed ones; host_index matches the
  // position in hosts() for every survivor.
  ASSERT_EQ(reduced.hosts().size(), 3u);
  EXPECT_EQ(reduced.hosts()[0], topo::HostId{0});
  EXPECT_EQ(reduced.hosts()[1], topo::HostId{2});
  EXPECT_EQ(reduced.hosts()[2], topo::HostId{4});
  for (std::size_t i = 0; i < reduced.hosts().size(); ++i) {
    EXPECT_EQ(reduced.host_index(reduced.hosts()[i]), i);
  }

  // Edges: only those between survivors, stats intact, lookup symmetric.
  ASSERT_EQ(reduced.edges().size(), 2u);
  const auto* e02 = reduced.find(topo::HostId{0}, topo::HostId{2});
  ASSERT_NE(e02, nullptr);
  EXPECT_EQ(e02, reduced.find(topo::HostId{2}, topo::HostId{0}));
  EXPECT_DOUBLE_EQ(e02->rtt.mean(), 11.0);
  const auto* e24 = reduced.find(topo::HostId{2}, topo::HostId{4});
  ASSERT_NE(e24, nullptr);
  EXPECT_DOUBLE_EQ(e24->rtt.mean(), 13.0);
  EXPECT_EQ(reduced.find(topo::HostId{0}, topo::HostId{1}), nullptr);
  EXPECT_EQ(reduced.find(topo::HostId{3}, topo::HostId{4}), nullptr);

  // Every surviving edge's endpoints resolve through host_index.
  for (const auto& e : reduced.edges()) {
    EXPECT_LT(reduced.host_index(e.a), reduced.hosts().size());
    EXPECT_LT(reduced.host_index(e.b), reduced.hosts().size());
  }

  // Removing nothing is the identity on hosts and edges.
  const auto same = table.without_hosts({});
  EXPECT_EQ(same.hosts().size(), table.hosts().size());
  EXPECT_EQ(same.edges().size(), table.edges().size());

  // Removed hosts are gone from the index entirely.
  EXPECT_DEATH((void)reduced.host_index(topo::HostId{1}), "not in path table");
}

TEST(PathTable, HostIndexAbortsOnUnknown) {
  auto ds = make_dataset(2);
  add_invocation(ds, 0, 1, {1.0, 1.0, 1.0});
  const auto table = PathTable::build(ds, test::min_samples(1));
  EXPECT_DEATH((void)table.host_index(topo::HostId{9}), "not in path table");
}

}  // namespace
}  // namespace pathsel::core
