#include "core/contribution.h"

#include <gtest/gtest.h>

#include "core/figures.h"
#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocations;
using test::make_dataset;

// Five hosts: host 4 is a "magic" relay giving every pair a fast detour;
// all direct paths among 0..3 are slow.
PathTable star_table() {
  auto ds = make_dataset(5);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      add_invocations(ds, i, j, 100.0, 3);
    }
    add_invocations(ds, i, 4, 20.0, 3);
  }
  return PathTable::build(ds, test::min_samples(1));
}

TEST(Contribution, MagicRelayDominatesContributions) {
  const auto contributions = improvement_contributions(star_table(), Metric::kRtt);
  ASSERT_EQ(contributions.size(), 5u);
  // Sorted ascending: the last entry must be host 4 with by far the largest
  // normalized contribution.
  EXPECT_EQ(contributions.back().host, topo::HostId{4});
  EXPECT_GT(contributions.back().normalized, 300.0);
}

TEST(Contribution, NormalizedMeanIsHundred) {
  const auto contributions = improvement_contributions(star_table(), Metric::kRtt);
  double total = 0.0;
  for (const auto& c : contributions) total += c.normalized;
  EXPECT_NEAR(total / static_cast<double>(contributions.size()), 100.0, 1e-9);
}

TEST(Contribution, UniformTriangleSharesEqually) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 100.0, 3);
  add_invocations(ds, 0, 2, 100.0, 3);
  add_invocations(ds, 1, 2, 100.0, 3);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto contributions = improvement_contributions(table, Metric::kRtt);
  // No alternate is superior (all detours cost 200 > 100): zero everywhere.
  for (const auto& c : contributions) {
    EXPECT_DOUBLE_EQ(c.normalized, 0.0);
  }
}

TEST(Contribution, GreedyRemovalFindsMagicRelay) {
  const auto result = remove_top_hosts(star_table(), Metric::kRtt, 1);
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0], topo::HostId{4});
}

TEST(Contribution, RemovalShiftsCdfLeft) {
  const auto result = remove_top_hosts(star_table(), Metric::kRtt, 1);
  const double before =
      fraction_improved(std::span<const PairResult>(result.full_results));
  const double after =
      fraction_improved(std::span<const PairResult>(result.reduced_results));
  // Six of the ten pairs (those among hosts 0..3) had the fast relay.
  EXPECT_NEAR(before, 0.6, 0.01);
  EXPECT_LT(after, 0.1);  // gone after removal
}

TEST(Contribution, RemovingFromRobustTableChangesLittle) {
  // Detours are plentiful and interchangeable: hosts on a line where
  // near-neighbor paths (distance <= 2) are fast and far paths are slow.
  // Distant pairs chain through many alternative relays, so removing any
  // single host barely moves the CDF — the paper's Figure 12 conclusion.
  auto ds = make_dataset(10);
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      const double rtt = (j - i <= 2) ? 20.0 : 100.0;
      add_invocations(ds, i, j, rtt, 3);
    }
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto result = remove_top_hosts(table, Metric::kRtt, 1);
  const double before =
      fraction_improved(std::span<const PairResult>(result.full_results));
  const double after =
      fraction_improved(std::span<const PairResult>(result.reduced_results));
  EXPECT_GT(before, 0.4);
  EXPECT_GT(after, 0.4);
  EXPECT_NEAR(before, after, 0.15);
}

TEST(Contribution, ZeroRemovalKeepsTable) {
  const auto result = remove_top_hosts(star_table(), Metric::kRtt, 0);
  EXPECT_TRUE(result.removed.empty());
  EXPECT_EQ(result.full_results.size(), result.reduced_results.size());
}

TEST(Contribution, NegativeCountAborts) {
  EXPECT_DEATH((void)remove_top_hosts(star_table(), Metric::kRtt, -1),
               "non-negative");
}

}  // namespace
}  // namespace pathsel::core
