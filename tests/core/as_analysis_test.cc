#include "core/as_analysis.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocations;
using test::make_dataset;

// Triangle with AS paths attached: direct 0-1 goes through AS 10; the legs
// go through AS 20 and AS 30.
PathTable as_table() {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 100.0, 3);
  add_invocations(ds, 0, 2, 30.0, 3);
  add_invocations(ds, 2, 1, 30.0, 3);
  for (auto& m : ds.measurements) {
    const int s = m.src.value();
    const int d = m.dst.value();
    if ((s == 0 && d == 1) || (s == 1 && d == 0)) {
      m.as_path = {topo::AsId{1}, topo::AsId{10}, topo::AsId{2}};
    } else if ((s == 0 && d == 2) || (s == 2 && d == 0)) {
      m.as_path = {topo::AsId{1}, topo::AsId{20}, topo::AsId{3}};
    } else {
      m.as_path = {topo::AsId{3}, topo::AsId{30}, topo::AsId{2}};
    }
  }
  return PathTable::build(ds, test::min_samples(1));
}

TEST(AsAnalysis, CountsDefaultAppearances) {
  const auto table = as_table();
  const auto results = analyze_alternate_paths(table, AnalyzerOptions{});
  const auto apps = as_appearances(table, results);
  auto find = [&apps](int as) -> const AsAppearance* {
    for (const auto& a : apps) {
      if (a.as == topo::AsId{as}) return &a;
    }
    return nullptr;
  };
  // AS 10 appears on exactly one measured default path (0-1).
  ASSERT_NE(find(10), nullptr);
  EXPECT_EQ(find(10)->default_count, 1u);
  // AS 1 (source stub) appears on two default paths: 0-1 and 0-2.
  ASSERT_NE(find(1), nullptr);
  EXPECT_EQ(find(1)->default_count, 2u);
}

TEST(AsAnalysis, CountsAlternateAppearances) {
  const auto table = as_table();
  const auto results = analyze_alternate_paths(table, AnalyzerOptions{});
  const auto apps = as_appearances(table, results);
  auto find = [&apps](int as) -> const AsAppearance* {
    for (const auto& a : apps) {
      if (a.as == topo::AsId{as}) return &a;
    }
    return nullptr;
  };
  // The best alternate for 0-1 is via host 2, whose legs traverse AS 20 and
  // AS 30; each of the three pairs has an alternate through the other two
  // edges.
  ASSERT_NE(find(20), nullptr);
  EXPECT_EQ(find(20)->alternate_count, 2u);  // alternates for 0-1 and 1-2... 
  ASSERT_NE(find(10), nullptr);
  EXPECT_GE(find(10)->alternate_count, 1u);  // 0-1 edge serves other pairs
}

TEST(AsAnalysis, SortedByAsId) {
  const auto table = as_table();
  const auto results = analyze_alternate_paths(table, AnalyzerOptions{});
  const auto apps = as_appearances(table, results);
  for (std::size_t i = 1; i < apps.size(); ++i) {
    EXPECT_LT(apps[i - 1].as, apps[i].as);
  }
}

TEST(AsAnalysis, EmptyResultsGiveOnlyDefaultCounts) {
  const auto table = as_table();
  const auto apps = as_appearances(table, {});
  for (const auto& a : apps) {
    EXPECT_EQ(a.alternate_count, 0u);
    EXPECT_GT(a.default_count, 0u);
  }
}

}  // namespace
}  // namespace pathsel::core
