#include "core/propagation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::make_dataset;

TEST(Propagation, GroupClassification) {
  // x = total diff, y = prop diff.
  EXPECT_EQ(classify_group(10.0, 5.0), 1);    // better in both
  EXPECT_EQ(classify_group(10.0, 15.0), 2);   // prop better, queueing worse
  EXPECT_EQ(classify_group(10.0, -5.0), 6);   // wins despite longer prop
  EXPECT_EQ(classify_group(-10.0, 5.0), 3);   // default wins despite prop
  EXPECT_EQ(classify_group(-10.0, -5.0), 4);  // default better in both
  EXPECT_EQ(classify_group(-10.0, -15.0), 5); // default prop better, queue worse
  EXPECT_EQ(classify_group(10.0, 10.0), 1);   // boundary y == x
  EXPECT_EQ(classify_group(0.0, 1.0), 1);
  EXPECT_EQ(classify_group(0.0, -1.0), 4);
}

// Dataset engineered so the 0-1 pair's alternate wins purely by avoiding
// queueing: direct has high queueing (samples 100 base + 80 congestion) but
// low propagation (p10 = 100); the detour's legs each have prop 60.
PathTable queueing_table() {
  auto ds = make_dataset(3);
  for (int i = 0; i < 30; ++i) {
    const double congestion = (i % 5 == 0) ? 0.0 : 120.0;  // mostly queued
    add_invocation(ds, 0, 1, {100.0 + congestion, 100.0 + congestion,
                              100.0 + congestion});
    add_invocation(ds, 0, 2, {60.0, 60.0, 60.0});
    add_invocation(ds, 2, 1, {60.0, 60.0, 60.0});
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  return PathTable::build(ds, opt);
}

TEST(Propagation, AnalysisPopulatesAllParts) {
  const auto analysis = analyze_propagation(queueing_table());
  EXPECT_EQ(analysis.rtt_results.size(), 3u);
  EXPECT_EQ(analysis.propagation_results.size(), 3u);
  EXPECT_EQ(analysis.scatter.size(), 3u);
  std::size_t total = 0;
  for (const auto c : analysis.group_counts) total += c;
  EXPECT_EQ(total, analysis.scatter.size());
}

TEST(Propagation, DetectsCongestionAvoidance) {
  const auto analysis = analyze_propagation(queueing_table());
  for (const auto& p : analysis.scatter) {
    if (p.total_diff > 0.0) {
      // Total improvement ~ 196 - 120 = 76 ms; propagation diff = 100 - 120
      // = -20 ms: the alternate wins despite longer propagation -> group 6.
      EXPECT_EQ(p.group, 6);
      EXPECT_LT(p.prop_diff, 0.0);
    }
  }
}

TEST(Propagation, PropagationMetricShowsSmallerGains) {
  // The paper's Figure 15: improvements measured on propagation delay are
  // smaller in magnitude than improvements on mean RTT when congestion
  // dominates.
  const auto analysis = analyze_propagation(queueing_table());
  double max_rtt_gain = 0.0;
  double max_prop_gain = 0.0;
  for (const auto& r : analysis.rtt_results) {
    max_rtt_gain = std::max(max_rtt_gain, r.improvement());
  }
  for (const auto& r : analysis.propagation_results) {
    max_prop_gain = std::max(max_prop_gain, r.improvement());
  }
  EXPECT_GT(max_rtt_gain, max_prop_gain);
}

TEST(Propagation, PropagationDominatedCase) {
  // Direct path has long propagation and no congestion; alternate is
  // genuinely shorter: groups 1/2 territory.
  auto ds = make_dataset(3);
  for (int i = 0; i < 20; ++i) {
    add_invocation(ds, 0, 1, {150.0, 151.0, 149.0});
    add_invocation(ds, 0, 2, {50.0, 51.0, 49.0});
    add_invocation(ds, 2, 1, {50.0, 51.0, 49.0});
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  const auto table = PathTable::build(ds, opt);
  const auto analysis = analyze_propagation(table);
  for (const auto& p : analysis.scatter) {
    if (p.total_diff > 0.0) {
      // All of the gain is propagation: group 1 (or 2 when sampling noise
      // nudges the propagation difference past the total).
      EXPECT_TRUE(p.group == 1 || p.group == 2) << p.group;
      EXPECT_NEAR(p.prop_diff, p.total_diff, 5.0);
    }
  }
}

}  // namespace
}  // namespace pathsel::core
