// Differential/golden equivalence harness for the columnar results core.
//
// The columnar refactor promises to be invisible: pairs -> columns -> pairs
// reproduces every PairResult field bit for bit, the figure/confidence
// sweeps give bit-identical answers whether they read the AoS vector or the
// columns, serialize -> parse -> serialize is byte-stable, and every
// malformed binary file is rejected with an explanatory Status.  This suite
// locks each promise against seeded random corpora spanning sizes, metrics,
// D2-degraded datasets and kNoRelay edges, at 1, 4 and 8 worker threads —
// the same discipline as dense_kernel_diff_test.cc.
#include "core/result_columns.h"

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/confidence.h"
#include "core/coverage.h"
#include "core/dense_kernel.h"
#include "core/figures.h"
#include "meas/catalog.h"
#include "test_util.h"
#include "util/atomic_io.h"
#include "util/rng.h"

namespace pathsel::core {
namespace {

using test::add_invocations;
using test::make_dataset;
using test::min_samples;

// Bit-level double equality: distinguishes +0.0 from -0.0 and compares NaN
// payloads, i.e. exactly the "stored and reloaded" identity the format
// promises (EXPECT_EQ would call 0.0 == -0.0 equal).
void expect_same_bits(double a, double b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
}

// A seeded random corpus: hosts, values and estimates are arbitrary doubles
// (negatives and exact zeros included), via sequences span zero (kNoRelay)
// to three intermediate hosts.
std::vector<PairResult> random_pairs(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<PairResult> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PairResult r;
    r.a = topo::HostId{static_cast<std::int32_t>(rng.uniform_int(0, 5000))};
    r.b = topo::HostId{static_cast<std::int32_t>(rng.uniform_int(0, 5000))};
    r.default_value = rng.uniform(-10.0, 500.0);
    r.alternate_value = rng.bernoulli(0.1) ? 0.0 : rng.uniform(-10.0, 500.0);
    r.default_estimate = {rng.uniform(0.0, 500.0), rng.uniform(0.0, 25.0),
                          rng.uniform(0.0, 1.0)};
    r.alternate_estimate = {rng.uniform(0.0, 500.0), rng.uniform(0.0, 25.0),
                            rng.uniform(0.0, 1.0)};
    const auto hops = static_cast<std::size_t>(rng.uniform_int(0, 3));
    for (std::size_t h = 0; h < hops; ++h) {
      r.via.push_back(
          topo::HostId{static_cast<std::int32_t>(rng.uniform_int(0, 5000))});
    }
    out.push_back(std::move(r));
  }
  return out;
}

void expect_pairs_identical(const std::vector<PairResult>& a,
                            const std::vector<PairResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "pair index " << i);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].via, b[i].via);
    expect_same_bits(a[i].default_value, b[i].default_value);
    expect_same_bits(a[i].alternate_value, b[i].alternate_value);
    expect_same_bits(a[i].default_estimate.mean, b[i].default_estimate.mean);
    expect_same_bits(a[i].default_estimate.var_of_mean,
                     b[i].default_estimate.var_of_mean);
    expect_same_bits(a[i].default_estimate.dof_denom,
                     b[i].default_estimate.dof_denom);
    expect_same_bits(a[i].alternate_estimate.mean,
                     b[i].alternate_estimate.mean);
    expect_same_bits(a[i].alternate_estimate.var_of_mean,
                     b[i].alternate_estimate.var_of_mean);
    expect_same_bits(a[i].alternate_estimate.dof_denom,
                     b[i].alternate_estimate.dof_denom);
  }
}

// Recomputes the trailing CRC after a structural tamper, so the parser's
// structural validation — not the checksum — is what rejects the file.
void fix_crc(std::string& bytes) {
  ASSERT_GE(bytes.size(), 4u);
  const std::uint32_t crc =
      crc32(std::string_view{bytes}.substr(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xffu);
  }
}

void expect_rejected(std::string_view bytes, const char* what) {
  SCOPED_TRACE(what);
  const auto parsed = parse_result_columns(bytes);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
  EXPECT_FALSE(parsed.status().message().empty());
}

TEST(ResultColumns, RoundTripBitIdentityAcrossSizes) {
  std::uint64_t seed = 9101;
  for (const std::size_t n : {0u, 1u, 2u, 37u, 256u, 1500u}) {
    SCOPED_TRACE(testing::Message() << "corpus size " << n);
    const auto pairs = random_pairs(n, seed++);
    for (const Metric metric :
         {Metric::kRtt, Metric::kLoss, Metric::kPropagation}) {
      const ResultColumns columns = from_pairs(pairs, metric);
      EXPECT_EQ(columns.metric, metric);
      ASSERT_EQ(columns.size(), n);
      expect_pairs_identical(pairs, to_pairs(columns));
    }
  }
}

TEST(ResultColumns, ColumnsMirrorPairAccessors) {
  const auto pairs = random_pairs(64, 42);
  const ResultColumns columns = from_pairs(pairs, Metric::kRtt);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    expect_same_bits(columns.improvement(i), pairs[i].improvement());
    expect_same_bits(columns.ratio(i), pairs[i].ratio());
    EXPECT_EQ(columns.relay[i],
              pairs[i].via.empty() ? kNoRelay : pairs[i].via.front().value());
    EXPECT_EQ(columns.hop_count[i],
              static_cast<std::int32_t>(pairs[i].via.size()));
    EXPECT_EQ(columns.significance[i],
              static_cast<std::int8_t>(SignificanceClass::kUnclassified));
  }
}

TEST(ResultColumns, SerializeParseSerializeByteStable) {
  std::uint64_t seed = 1201;
  for (const std::size_t n : {0u, 1u, 33u, 700u}) {
    SCOPED_TRACE(testing::Message() << "corpus size " << n);
    std::vector<ResultColumns> sets;
    sets.push_back(from_pairs(random_pairs(n, seed++), Metric::kRtt));
    sets.push_back(from_pairs(random_pairs(n / 2, seed++), Metric::kLoss));
    const std::string bytes = serialize_result_columns(sets);
    const auto parsed = parse_result_columns(bytes);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    ASSERT_EQ(parsed.value().size(), sets.size());
    for (std::size_t s = 0; s < sets.size(); ++s) {
      EXPECT_EQ(parsed.value()[s].metric, sets[s].metric);
      EXPECT_EQ(parsed.value()[s].via_offset, sets[s].via_offset);
      expect_pairs_identical(to_pairs(sets[s]), to_pairs(parsed.value()[s]));
    }
    EXPECT_EQ(serialize_result_columns(parsed.value()), bytes);
  }
}

TEST(ResultColumns, SerializationIsDeterministic) {
  const auto pairs = random_pairs(100, 77);
  const ResultColumns a = from_pairs(pairs, Metric::kLoss);
  const ResultColumns b = from_pairs(pairs, Metric::kLoss);
  EXPECT_EQ(serialize_result_columns({&a, 1}), serialize_result_columns({&b, 1}));
}

TEST(ResultColumns, SignificanceColumnSurvivesTheRoundTrip) {
  ResultColumns columns = from_pairs(random_pairs(50, 4), Metric::kRtt);
  ASSERT_TRUE(annotate_significance(columns).is_ok());
  const std::string bytes = serialize_result_columns({&columns, 1});
  const auto parsed = parse_result_columns(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().front().significance, columns.significance);
}

// --- the differential layer: AoS and columnar sweeps must agree in bits ---

TEST(ResultColumns, FigureSweepsMatchPairSweeps) {
  std::uint64_t seed = 3301;
  for (const std::size_t n : {0u, 5u, 300u, 1111u}) {
    SCOPED_TRACE(testing::Message() << "corpus size " << n);
    const auto pairs = random_pairs(n, seed++);
    const ResultColumns columns = from_pairs(pairs, Metric::kRtt);
    const std::span<const PairResult> span{pairs};
    for (const int threads : {1, 4, 8}) {
      SCOPED_TRACE(testing::Message() << "threads " << threads);
      const auto cdf_pairs = improvement_cdf(span, threads);
      const auto cdf_cols = improvement_cdf(columns, threads);
      ASSERT_EQ(cdf_pairs.size(), cdf_cols.size());
      for (std::size_t i = 0; i < cdf_pairs.size(); ++i) {
        expect_same_bits(cdf_pairs.sorted_values()[i],
                         cdf_cols.sorted_values()[i]);
      }
      const auto ratio_pairs = ratio_cdf(span, threads);
      const auto ratio_cols = ratio_cdf(columns, threads);
      ASSERT_EQ(ratio_pairs.size(), ratio_cols.size());
      for (std::size_t i = 0; i < ratio_pairs.size(); ++i) {
        expect_same_bits(ratio_pairs.sorted_values()[i],
                         ratio_cols.sorted_values()[i]);
      }
      expect_same_bits(fraction_improved(span, threads),
                       fraction_improved(columns, threads));
    }
  }
}

TEST(ResultColumns, ConfidenceSweepsMatchPairSweeps) {
  const auto pairs = random_pairs(600, 5501);
  const ResultColumns columns = from_pairs(pairs, Metric::kRtt);
  const std::span<const PairResult> span{pairs};
  for (const int threads : {1, 4, 8}) {
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    const auto tally_pairs = classify_significance(span, 0.95, threads);
    const auto tally_cols = classify_significance(columns, 0.95, threads);
    EXPECT_EQ(tally_pairs.pairs, tally_cols.pairs);
    expect_same_bits(tally_pairs.better, tally_cols.better);
    expect_same_bits(tally_pairs.worse, tally_cols.worse);
    expect_same_bits(tally_pairs.indeterminate, tally_cols.indeterminate);
    expect_same_bits(tally_pairs.zero, tally_cols.zero);

    const auto ci_pairs = confidence_cdf(span, 0.95, threads);
    const auto ci_cols = confidence_cdf(columns, 0.95, threads);
    ASSERT_EQ(ci_pairs.size(), ci_cols.size());
    for (std::size_t i = 0; i < ci_pairs.size(); ++i) {
      expect_same_bits(ci_pairs[i].difference, ci_cols[i].difference);
      expect_same_bits(ci_pairs[i].fraction, ci_cols[i].fraction);
      expect_same_bits(ci_pairs[i].half_width, ci_cols[i].half_width);
    }
  }
}

TEST(ResultColumns, ThreadCountInvariance) {
  const ResultColumns columns = from_pairs(random_pairs(900, 8801), Metric::kRtt);
  const auto cdf1 = improvement_cdf(columns, 1);
  const auto tally1 = classify_significance(columns, 0.95, 1);
  ResultColumns annotated1 = columns;
  ASSERT_TRUE(annotate_significance(annotated1, 0.95, 1).is_ok());
  for (const int threads : {4, 8}) {
    SCOPED_TRACE(testing::Message() << "threads " << threads);
    const auto cdf_t = improvement_cdf(columns, threads);
    ASSERT_EQ(cdf_t.size(), cdf1.size());
    for (std::size_t i = 0; i < cdf_t.size(); ++i) {
      expect_same_bits(cdf1.sorted_values()[i], cdf_t.sorted_values()[i]);
    }
    const auto tally_t = classify_significance(columns, 0.95, threads);
    expect_same_bits(tally1.better, tally_t.better);
    expect_same_bits(tally1.worse, tally_t.worse);
    expect_same_bits(tally1.indeterminate, tally_t.indeterminate);
    expect_same_bits(tally1.zero, tally_t.zero);
    ResultColumns annotated_t = columns;
    ASSERT_TRUE(annotate_significance(annotated_t, 0.95, threads).is_ok());
    EXPECT_EQ(annotated1.significance, annotated_t.significance);
  }
}

TEST(ResultColumns, AnnotateAgreesWithTally) {
  ResultColumns columns = from_pairs(random_pairs(400, 6201), Metric::kLoss);
  const auto tally = classify_significance(columns, 0.95, 1);
  ASSERT_TRUE(annotate_significance(columns, 0.95, 1).is_ok());
  std::size_t better = 0, worse = 0, indet = 0, zero = 0;
  for (const std::int8_t s : columns.significance) {
    switch (static_cast<SignificanceClass>(s)) {
      case SignificanceClass::kBetter: ++better; break;
      case SignificanceClass::kWorse: ++worse; break;
      case SignificanceClass::kIndeterminate: ++indet; break;
      case SignificanceClass::kZero: ++zero; break;
      case SignificanceClass::kUnclassified:
        ADD_FAILURE() << "annotate left a pair unclassified";
        break;
    }
  }
  const auto n = static_cast<double>(columns.size());
  EXPECT_DOUBLE_EQ(tally.better, static_cast<double>(better) / n);
  EXPECT_DOUBLE_EQ(tally.worse, static_cast<double>(worse) / n);
  EXPECT_DOUBLE_EQ(tally.indeterminate, static_cast<double>(indet) / n);
  EXPECT_DOUBLE_EQ(tally.zero, static_cast<double>(zero) / n);
}

// --- real sweeps: analyzer output through the columns, degraded included ---

TEST(ResultColumns, AnalyzeColumnsMatchesAnalyzeWithCoverage) {
  auto ds = make_dataset(4);
  add_invocations(ds, 0, 1, 100.0, 3);
  add_invocations(ds, 0, 2, 20.0, 3);
  add_invocations(ds, 1, 2, 20.0, 3);
  add_invocations(ds, 0, 3, 50.0, 3);
  add_invocations(ds, 1, 3, 40.0, 3);
  add_invocations(ds, 2, 3, 30.0, 3);
  const auto aos = analyze_with_coverage(ds, min_samples(2));
  const auto cols = analyze_columns_with_coverage(ds, min_samples(2));
  ASSERT_TRUE(aos.is_ok());
  ASSERT_TRUE(cols.is_ok());
  EXPECT_EQ(cols.value().columns.metric, Metric::kRtt);
  expect_pairs_identical(aos.value().results, to_pairs(cols.value().columns));
  EXPECT_EQ(aos.value().coverage.covered_pairs,
            cols.value().coverage.covered_pairs);
  EXPECT_EQ(aos.value().coverage.analyzable_edges,
            cols.value().coverage.analyzable_edges);
  EXPECT_EQ(aos.value().coverage.disconnected_edges,
            cols.value().coverage.disconnected_edges);
}

TEST(ResultColumns, DegradedDatasetRoundTripsThroughTheBinaryFormat) {
  // A fault-injected D2 slice: lost measurements, under-sampled edges and
  // disconnected pairs — the degraded shapes the format must carry.
  meas::CatalogConfig cfg;
  cfg.scale = 0.02;
  cfg.fault_intensity = 0.3;
  cfg.fault_seed = 11;
  meas::Catalog catalog{cfg};
  const auto swept =
      analyze_columns_with_coverage(catalog.by_name("D2"), min_samples(2));
  ASSERT_TRUE(swept.is_ok()) << swept.status().to_string();
  const ResultColumns& columns = swept.value().columns;
  ASSERT_GT(columns.size(), 0u);
  const std::string bytes = serialize_result_columns({&columns, 1});
  const auto parsed = parse_result_columns(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  expect_pairs_identical(to_pairs(columns), to_pairs(parsed.value().front()));
  EXPECT_EQ(serialize_result_columns(parsed.value()), bytes);
}

// --- file I/O and rejection of malformed input ---

TEST(ResultColumns, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pathsel_result_columns_test.psrc")
          .string();
  const ResultColumns columns = from_pairs(random_pairs(80, 31), Metric::kRtt);
  ASSERT_TRUE(write_result_columns(path, {&columns, 1}).is_ok());
  const auto read_back = read_result_columns(path);
  ASSERT_TRUE(read_back.is_ok()) << read_back.status().to_string();
  ASSERT_EQ(read_back.value().size(), 1u);
  expect_pairs_identical(to_pairs(columns), to_pairs(read_back.value().front()));
  std::filesystem::remove(path);
}

TEST(ResultColumns, MissingFileIsAnIoError) {
  const auto read_back = read_result_columns("/nonexistent/results.psrc");
  ASSERT_FALSE(read_back.is_ok());
  EXPECT_EQ(read_back.status().code(), ErrorCode::kIoError);
}

TEST(ResultColumns, RejectsMalformedInput) {
  const ResultColumns columns = from_pairs(random_pairs(10, 99), Metric::kRtt);
  const std::string good = serialize_result_columns({&columns, 1});
  ASSERT_TRUE(parse_result_columns(good).is_ok());

  expect_rejected("", "empty input");
  expect_rejected(std::string_view{good}.substr(0, 8), "header-only prefix");
  for (const std::size_t cut :
       {std::size_t{15}, std::size_t{16}, std::size_t{40}, good.size() - 1}) {
    expect_rejected(std::string_view{good}.substr(0, cut), "truncated file");
  }

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, "bad magic");

  std::string newer = good;
  newer[4] = static_cast<char>(kResultColumnsVersion + 1);
  fix_crc(newer);
  {
    const auto parsed = parse_result_columns(newer);
    ASSERT_FALSE(parsed.is_ok());
    // Version rejection must explain itself, not just say "bad file".
    EXPECT_NE(parsed.status().message().find("version"), std::string::npos)
        << parsed.status().message();
  }

  std::string flipped = good;
  flipped[good.size() / 2] = static_cast<char>(flipped[good.size() / 2] ^ 0x10);
  expect_rejected(flipped, "payload corruption is caught by the CRC");

  std::string absurd = good;
  // Pair count (u64 after magic+version+set count+metric, offset 16) claims
  // more entries than the file could hold; must reject before allocating.
  absurd[16] = static_cast<char>(0xff);
  absurd[17] = static_cast<char>(0xff);
  absurd[18] = static_cast<char>(0xff);
  fix_crc(absurd);
  expect_rejected(absurd, "absurd pair count");

  std::string trailing = good;
  trailing.insert(trailing.size() - 4, "!!");
  fix_crc(trailing);
  expect_rejected(trailing, "trailing bytes");

  std::string bad_metric = good;
  bad_metric[12] = static_cast<char>(9);
  fix_crc(bad_metric);
  expect_rejected(bad_metric, "unknown metric tag");
}

TEST(ResultColumns, RejectsStructuralLies) {
  // One pair with one relay: tamper with the derived-consistency fields.
  PairResult r;
  r.a = topo::HostId{1};
  r.b = topo::HostId{2};
  r.via.push_back(topo::HostId{3});
  const std::vector<PairResult> pairs{r};
  const ResultColumns columns = from_pairs(pairs, Metric::kRtt);
  const std::string good = serialize_result_columns({&columns, 1});

  // Layout: 12-byte file header, 4-byte metric, 8-byte n, 8-byte m, then
  // src/dst/relay/hop_count columns of 4 bytes each (n == 1).
  const std::size_t relay_at = 12 + 4 + 8 + 8 + 4 + 4;
  const std::size_t hops_at = relay_at + 4;
  const std::size_t sig_at = hops_at + 4;

  std::string wrong_relay = good;
  wrong_relay[relay_at] = static_cast<char>(99);
  fix_crc(wrong_relay);
  expect_rejected(wrong_relay, "relay disagrees with via");

  std::string negative_hops = good;
  negative_hops[hops_at + 3] = static_cast<char>(0x80);
  fix_crc(negative_hops);
  expect_rejected(negative_hops, "negative hop count");

  std::string short_hops = good;
  short_hops[hops_at] = 0;  // hop sum 0 != via count 1
  fix_crc(short_hops);
  expect_rejected(short_hops, "hop counts do not tile the via column");

  std::string bad_class = good;
  bad_class[sig_at] = static_cast<char>(17);
  fix_crc(bad_class);
  expect_rejected(bad_class, "significance class out of range");
}

TEST(ResultColumns, JsonRenderingIsDeterministic) {
  const ResultColumns columns = from_pairs(random_pairs(6, 123), Metric::kLoss);
  const std::string a = result_columns_to_json(columns);
  const std::string b = result_columns_to_json(columns);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"type\": \"result_columns\""), std::string::npos);
  EXPECT_NE(a.find("\"metric\": \"loss\""), std::string::npos);
  EXPECT_NE(a.find("\"pairs\": 6"), std::string::npos);
  for (const char* key :
       {"\"src\"", "\"dst\"", "\"relay\"", "\"hop_count\"", "\"significance\"",
        "\"default_value\"", "\"alternate_value\"", "\"via\""}) {
    EXPECT_NE(a.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace pathsel::core
