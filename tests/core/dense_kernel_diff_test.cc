// Differential suite: the dense min-plus kernel vs. the reference search.
//
// The dense kernel promises the same PairResult vector as the per-pair
// Bellman-Ford reference for every one-hop sweep — same pairs in the same
// order, same relay, bit-identical composed values.  This suite locks that
// promise against ~20 seeded random tables spanning mesh size, edge density,
// disconnected pairs, and single-sample degraded edges, at 1, 4, and 8
// worker threads, plus one hand-built golden table with hard-coded
// expectations and unit tests for the kernel's building blocks.
#include "core/dense_kernel.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/alternate.h"
#include "core/path_table.h"
#include "meas/dataset.h"
#include "test_util.h"
#include "util/rng.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::add_invocations;
using test::make_dataset;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct MeshSpec {
  int hosts = 0;
  double density = 1.0;
  double loss = 0.0;      // per-sample loss probability
  bool degraded = false;  // D2 loss counting + some single-invocation edges
  Metric metric = Metric::kRtt;
  std::uint64_t seed = 0;
};

// A random mesh per `spec`: each unordered pair is measured with probability
// `density`; most edges get two 3-sample invocations.  Degraded meshes turn
// on the D2 first-sample-loss-only heuristic and give a third of their edges
// a single invocation, so those edges carry exactly one loss observation —
// exercising the count==1 point-estimate path through compose_estimate.
// Low densities leave pairs whose removal disconnects them, so the
// no-alternate omission rule is exercised too.
meas::Dataset make_mesh(const MeshSpec& spec) {
  auto ds = make_dataset(spec.hosts);
  if (spec.degraded) ds.first_sample_loss_only = true;
  Rng rng{spec.seed};
  for (int i = 0; i < spec.hosts; ++i) {
    for (int j = i + 1; j < spec.hosts; ++j) {
      if (!rng.bernoulli(spec.density)) continue;
      const double base = rng.uniform(5.0, 150.0);
      const bool single = spec.degraded && rng.bernoulli(1.0 / 3.0);
      const int invocations = single ? 1 : 2;
      for (int v = 0; v < invocations; ++v) {
        meas::Measurement m;
        m.src = topo::HostId{i};
        m.dst = topo::HostId{j};
        m.completed = true;
        int ok = 0;
        for (auto& s : m.samples) {
          s.lost = rng.bernoulli(spec.loss);
          s.rtt_ms = base + rng.uniform(0.0, 10.0);
          ok += s.lost ? 0 : 1;
        }
        if (ok < 2) {
          // Keep two RTT samples alive so the edge survives the traceroute
          // rtt.count() >= 2 build filter.
          m.samples[1].lost = false;
          m.samples[2].lost = false;
        }
        ds.measurements.push_back(std::move(m));
      }
    }
  }
  return ds;
}

// Asserts a and b are the same result vector: same pairs in the same order,
// same relay list, values within 1e-12 — and in fact bit-identical, which is
// the stronger property the kernel guarantees (±0.0 compare equal under ==,
// which is exactly the equivalence the engines promise).
void expect_identical(const std::vector<PairResult>& a,
                      const std::vector<PairResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "pair index " << i);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
    EXPECT_EQ(a[i].via, b[i].via);
    EXPECT_NEAR(a[i].default_value, b[i].default_value, 1e-12);
    EXPECT_NEAR(a[i].alternate_value, b[i].alternate_value, 1e-12);
    EXPECT_EQ(a[i].default_value, b[i].default_value);
    EXPECT_EQ(a[i].alternate_value, b[i].alternate_value);
    EXPECT_EQ(a[i].default_estimate.mean, b[i].default_estimate.mean);
    EXPECT_EQ(a[i].default_estimate.var_of_mean,
              b[i].default_estimate.var_of_mean);
    EXPECT_EQ(a[i].alternate_estimate.mean, b[i].alternate_estimate.mean);
    EXPECT_EQ(a[i].alternate_estimate.var_of_mean,
              b[i].alternate_estimate.var_of_mean);
  }
}

std::vector<PairResult> run(const PathTable& table, Kernel kernel, int threads,
                            Metric metric, SimdMode simd = SimdMode::kAuto) {
  AnalyzerOptions o;
  o.metric = metric;
  o.max_intermediate_hosts = 1;
  o.threads = threads;
  o.kernel = kernel;
  o.simd = simd;
  return analyze_alternate_paths(table, o);
}

// The ~20 seeded tables.  Sizes straddle kDenseMinHosts so both sides of the
// auto heuristic appear among them; densities from sparse (disconnected
// pairs guaranteed) to complete; RTT and loss metrics; degraded tables mix
// in single-sample edges whose estimates are point values.
std::vector<MeshSpec> mesh_specs() {
  std::vector<MeshSpec> specs;
  std::uint64_t seed = 7001;
  for (const int hosts : {8, 12, 24, 48}) {
    for (const double density : {0.25, 0.6, 1.0}) {
      specs.push_back({hosts, density, 0.0, false, Metric::kRtt, seed++});
    }
  }
  for (const int hosts : {10, 20, 40}) {
    specs.push_back({hosts, 0.7, 0.15, false, Metric::kLoss, seed++});
  }
  for (const int hosts : {9, 16, 32}) {
    specs.push_back({hosts, 0.5, 0.1, true, Metric::kRtt, seed++});
    specs.push_back({hosts, 0.5, 0.2, true, Metric::kLoss, seed++});
  }
  return specs;  // 12 + 3 + 6 = 21 tables
}

TEST(DenseKernelDiff, MatchesReferenceOnSeededTables) {
  for (const MeshSpec& spec : mesh_specs()) {
    SCOPED_TRACE(testing::Message()
                 << "hosts=" << spec.hosts << " density=" << spec.density
                 << " loss=" << spec.loss << " degraded=" << spec.degraded
                 << " metric=" << static_cast<int>(spec.metric)
                 << " seed=" << spec.seed);
    const auto table =
        PathTable::build(make_mesh(spec), test::min_samples(1));
    const auto reference = run(table, Kernel::kSearch, 1, spec.metric);
    for (const int threads : {1, 4, 8}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads);
      // Every instruction path must match the reference bit for bit: the
      // scalar loop, the AVX2 loop (resolves to scalar on hardware without
      // it — then a redundant but harmless repeat), and whatever kAuto /
      // PATHSEL_SIMD picks for this run.
      for (const SimdMode simd :
           {SimdMode::kScalar, SimdMode::kAvx2, SimdMode::kAuto}) {
        SCOPED_TRACE(testing::Message()
                     << "simd=" << simd_mode_name(simd));
        expect_identical(reference,
                         run(table, Kernel::kDense, threads, spec.metric,
                             simd));
      }
      expect_identical(reference,
                       run(table, Kernel::kSearch, threads, spec.metric));
    }
  }
}

TEST(DenseKernelDiff, AutoSelectionPreservesResults) {
  // A dense 48-host mesh crosses the auto threshold; whatever engine kAuto
  // picks, the results must match both forced engines.
  MeshSpec spec{48, 1.0, 0.0, false, Metric::kRtt, 909};
  const auto table = PathTable::build(make_mesh(spec), test::min_samples(1));
  ASSERT_TRUE(dense_kernel_applicable(table.hosts().size(),
                                      table.edges().size(),
                                      [] {
                                        AnalyzerOptions o;
                                        o.max_intermediate_hosts = 1;
                                        return o;
                                      }()));
  const auto reference = run(table, Kernel::kSearch, 1, spec.metric);
  expect_identical(reference, run(table, Kernel::kAuto, 4, spec.metric));
  expect_identical(reference, run(table, Kernel::kDense, 4, spec.metric));
}

TEST(DenseKernelDiff, GoldenFixedTable) {
  // Hand-built 5-host table (RTT):
  //   0-1: 100   0-2: 30   2-1: 30   0-3: 10   3-1: 95   2-3: 5   0-4: 400
  // One-hop relays: 0-1 best via 2 (60); 0-2 best via 3 (15); 4 is a leaf,
  // so pair 0-4 has no alternate and is omitted.
  auto ds = make_dataset(5);
  add_invocations(ds, 0, 1, 100.0, 3);
  add_invocations(ds, 0, 2, 30.0, 3);
  add_invocations(ds, 2, 1, 30.0, 3);
  add_invocations(ds, 0, 3, 10.0, 3);
  add_invocations(ds, 3, 1, 95.0, 3);
  add_invocations(ds, 2, 3, 5.0, 3);
  add_invocations(ds, 0, 4, 400.0, 3);
  const auto table = PathTable::build(ds, test::min_samples(1));

  for (const Kernel kernel : {Kernel::kDense, Kernel::kSearch}) {
    SCOPED_TRACE(testing::Message() << "kernel=" << static_cast<int>(kernel));
    const auto results = run(table, kernel, 1, Metric::kRtt);
    ASSERT_EQ(results.size(), 6u);  // 7 edges, 0-4 omitted

    // Emission follows table edge order: ascending (min host, max host).
    const struct {
      int a, b, via;
      double direct, alternate;
    } want[] = {
        {0, 1, 2, 100.0, 60.0},  // 30 + 30 beats 10 + 95 via 3
        {0, 2, 3, 30.0, 15.0},   // 10 + 5
        {0, 3, 2, 10.0, 35.0},   // 30 + 5 beats 100 + 95 via 1
        {1, 2, 3, 30.0, 100.0},  // 95 + 5 beats 100 + 30 via 0
        {1, 3, 2, 95.0, 35.0},   // 30 + 5 beats 100 + 10 via 0
        {2, 3, 0, 5.0, 40.0},    // 30 + 10
    };
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "pair index " << i);
      EXPECT_EQ(results[i].a, topo::HostId{want[i].a});
      EXPECT_EQ(results[i].b, topo::HostId{want[i].b});
      ASSERT_EQ(results[i].via.size(), 1u);
      EXPECT_EQ(results[i].via[0], topo::HostId{want[i].via});
      EXPECT_DOUBLE_EQ(results[i].default_value, want[i].direct);
      EXPECT_DOUBLE_EQ(results[i].alternate_value, want[i].alternate);
    }
  }
}

TEST(DenseKernelDiff, ThreadCountInvariantAtOddGeometry) {
  // 33 hosts: not a multiple of the row chunk, so the last chunk is ragged.
  MeshSpec spec{33, 0.8, 0.05, false, Metric::kRtt, 424242};
  const auto table = PathTable::build(make_mesh(spec), test::min_samples(1));
  const auto base = run(table, Kernel::kDense, 1, spec.metric);
  for (const int threads : {2, 3, 4, 7, 8}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_identical(base, run(table, Kernel::kDense, threads, spec.metric));
  }
}

// ---------------------------------------------------------------------------
// Building blocks.

TEST(WeightMatrix, LayoutAndLossTransform) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 10.0, 3);
  // 1-2: 50% loss (alternating lost samples across 4 invocations).
  for (int i = 0; i < 4; ++i) {
    add_invocation(ds, 1, 2, {i % 2 == 0 ? 20.0 : -1.0,
                              i % 2 == 0 ? -1.0 : 20.0, 20.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));

  const WeightMatrix rtt = build_weight_matrix(table, Metric::kRtt);
  ASSERT_EQ(rtt.n, 3u);
  ASSERT_EQ(rtt.w.size(), 9u);
  for (std::size_t i = 0; i < rtt.n; ++i) EXPECT_EQ(rtt.at(i, i), kInf);
  EXPECT_DOUBLE_EQ(rtt.at(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(rtt.at(1, 0), 10.0);  // symmetric
  EXPECT_EQ(rtt.at(0, 2), kInf);         // unmeasured pair

  const WeightMatrix loss = build_weight_matrix(table, Metric::kLoss);
  const std::size_t i1 = table.host_index(topo::HostId{1});
  const std::size_t i2 = table.host_index(topo::HostId{2});
  const double p = edge_metric_value(*table.find(topo::HostId{1},
                                                 topo::HostId{2}),
                                     Metric::kLoss);
  EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);  // 4 of 12 samples lost
  EXPECT_DOUBLE_EQ(loss.w[i1 * loss.n + i2], -std::log(1.0 - p));
  EXPECT_DOUBLE_EQ(loss.at(0, 1), -std::log(1.0 - 0.0));  // lossless edge
}

TEST(MinPlus, TieBreaksToSmallestRelayIndex) {
  // Two equal-cost relays for (0, 1): via 2 and via 3, both 10 + 10.
  WeightMatrix w;
  w.n = 4;
  w.w.assign(16, kInf);
  const auto set = [&](std::size_t i, std::size_t j, double v) {
    w.w[i * w.n + j] = v;
    w.w[j * w.n + i] = v;
  };
  set(0, 1, 50.0);
  set(0, 2, 10.0);
  set(2, 1, 10.0);
  set(0, 3, 10.0);
  set(3, 1, 10.0);
  const auto mp = min_plus_square(w);
  ASSERT_TRUE(mp.is_ok());
  EXPECT_DOUBLE_EQ(mp.value().best[0 * 4 + 1], 20.0);
  EXPECT_EQ(mp.value().via[0 * 4 + 1], 2);  // smallest index wins the tie
}

TEST(MinPlus, NoFiniteRelayYieldsNoRelay) {
  // 0-1 measured, but no third host connects to both.
  WeightMatrix w;
  w.n = 3;
  w.w.assign(9, kInf);
  w.w[0 * 3 + 1] = w.w[1 * 3 + 0] = 5.0;
  w.w[0 * 3 + 2] = w.w[2 * 3 + 0] = 7.0;
  const auto mp = min_plus_square(w);
  ASSERT_TRUE(mp.is_ok());
  EXPECT_EQ(mp.value().best[0 * 3 + 1], kInf);
  EXPECT_EQ(mp.value().via[0 * 3 + 1], kNoRelay);
  EXPECT_DOUBLE_EQ(mp.value().best[1 * 3 + 2], 12.0);  // 1-0-2 relays fine
  EXPECT_EQ(mp.value().via[1 * 3 + 2], 0);
  // The diagonal holds round trips (0-1-0 here) — algebraically fine; the
  // emission loop only ever reads (i, j) cells of measured edges, i != j.
  EXPECT_DOUBLE_EQ(mp.value().best[0 * 3 + 0], 10.0);
}

TEST(MinPlus, RelayNeverDegeneratesToEndpointOrDirectEdge) {
  // Complete triangle: the best (and only) relay for each pair is the third
  // host — never i, j, or a path re-using the direct edge.
  WeightMatrix w;
  w.n = 3;
  w.w.assign(9, kInf);
  const auto set = [&](std::size_t i, std::size_t j, double v) {
    w.w[i * w.n + j] = v;
    w.w[j * w.n + i] = v;
  };
  set(0, 1, 1.0);
  set(0, 2, 1.0);
  set(1, 2, 1.0);
  const auto mp = min_plus_square(w);
  ASSERT_TRUE(mp.is_ok());
  EXPECT_EQ(mp.value().via[0 * 3 + 1], 2);
  EXPECT_EQ(mp.value().via[0 * 3 + 2], 1);
  EXPECT_EQ(mp.value().via[1 * 3 + 2], 0);
  EXPECT_DOUBLE_EQ(mp.value().best[0 * 3 + 1], 2.0);
}

TEST(DenseApplicable, HonoursKernelAndHopBounds) {
  AnalyzerOptions o;
  o.max_intermediate_hosts = 1;
  o.kernel = Kernel::kDense;
  EXPECT_TRUE(dense_kernel_applicable(4, 6, o));  // forced: size irrelevant
  o.kernel = Kernel::kSearch;
  EXPECT_FALSE(dense_kernel_applicable(4096, 4096 * 2000, o));
  o.kernel = Kernel::kAuto;
  o.max_intermediate_hosts = 0;  // unbounded: dense can't represent it
  EXPECT_FALSE(dense_kernel_applicable(4096, 4096 * 2000, o));
  o.max_intermediate_hosts = 2;
  EXPECT_FALSE(dense_kernel_applicable(4096, 4096 * 2000, o));
}

TEST(DenseApplicable, AutoComparesCostEstimates) {
  AnalyzerOptions o;
  o.max_intermediate_hosts = 1;
  // Below the host floor: never auto-selected, however dense.
  EXPECT_FALSE(dense_kernel_applicable(kDenseMinHosts - 1, 400, o));
  // Complete 64-host mesh: E = 2016, 2E^2 ≈ 8.1e6 >= 8 * 64^3 ≈ 2.1e6.
  EXPECT_TRUE(dense_kernel_applicable(64, 64 * 63 / 2, o));
  // Sparse 1000-host mesh (E = N): search is far cheaper than N^3.
  EXPECT_FALSE(dense_kernel_applicable(1000, 1000, o));
  // Above the ceiling the O(N^2) footprint rules the kernel out.
  EXPECT_FALSE(dense_kernel_applicable(kDenseMaxHosts + 1,
                                       kDenseMaxHosts * 1000, o));
}

TEST(DenseKernel, CancellationSurfacesStatus) {
  MeshSpec spec{40, 1.0, 0.0, false, Metric::kRtt, 5150};
  const auto table = PathTable::build(make_mesh(spec), test::min_samples(1));
  CancelToken cancel;
  cancel.cancel();
  AnalyzerOptions o;
  o.max_intermediate_hosts = 1;
  o.kernel = Kernel::kDense;
  o.cancel = &cancel;
  const auto result = analyze_alternate_paths_checked(table, o);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kCancelled);
}

}  // namespace
}  // namespace pathsel::core
