#include "core/bandwidth.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/tcp_model.h"
#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_transfer;
using test::make_dataset;

PathTable tcp_triangle() {
  auto ds = make_dataset(3);
  ds.kind = meas::MeasurementKind::kTcpTransfer;
  for (int i = 0; i < 3; ++i) {
    add_transfer(ds, 0, 1, 50.0, 100.0, 0.04);   // slow, lossy direct
    add_transfer(ds, 0, 2, 300.0, 40.0, 0.004);  // clean legs
    add_transfer(ds, 2, 1, 300.0, 40.0, 0.004);
  }
  return PathTable::build(ds, test::min_samples(1));
}

TEST(Bandwidth, OptimisticUsesMaxLoss) {
  const auto results = analyze_bandwidth(tcp_triangle(),
                                         LossComposition::kOptimistic);
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_EQ(r.via, topo::HostId{2});
      EXPECT_DOUBLE_EQ(r.default_kBps, 50.0);
      const double expected = sim::mathis_bandwidth_kBps(80.0, 0.004);
      EXPECT_NEAR(r.alternate_kBps, expected, 1e-9);
      EXPECT_GT(r.improvement(), 0.0);
      EXPECT_GT(r.ratio(), 1.0);
    }
  }
}

TEST(Bandwidth, PessimisticUsesIndependentLoss) {
  const auto results = analyze_bandwidth(tcp_triangle(),
                                         LossComposition::kPessimistic);
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      const double loss = 1.0 - (1.0 - 0.004) * (1.0 - 0.004);
      const double expected = sim::mathis_bandwidth_kBps(80.0, loss);
      EXPECT_NEAR(r.alternate_kBps, expected, 1e-9);
    }
  }
}

TEST(Bandwidth, OptimisticAtLeastPessimistic) {
  const auto opt = analyze_bandwidth(tcp_triangle(),
                                     LossComposition::kOptimistic);
  const auto pess = analyze_bandwidth(tcp_triangle(),
                                      LossComposition::kPessimistic);
  ASSERT_EQ(opt.size(), pess.size());
  for (std::size_t i = 0; i < opt.size(); ++i) {
    EXPECT_GE(opt[i].alternate_kBps, pess[i].alternate_kBps - 1e-9);
  }
}

TEST(Bandwidth, PicksBestIntermediate) {
  auto ds = make_dataset(4);
  ds.kind = meas::MeasurementKind::kTcpTransfer;
  add_transfer(ds, 0, 1, 50.0, 100.0, 0.04);
  add_transfer(ds, 0, 2, 100.0, 80.0, 0.02);   // mediocre relay
  add_transfer(ds, 2, 1, 100.0, 80.0, 0.02);
  add_transfer(ds, 0, 3, 300.0, 30.0, 0.002);  // great relay
  add_transfer(ds, 3, 1, 300.0, 30.0, 0.002);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto results = analyze_bandwidth(table, LossComposition::kOptimistic);
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_EQ(r.via, topo::HostId{3});
    }
  }
}

TEST(Bandwidth, NoIntermediateOmitsPair) {
  auto ds = make_dataset(3);
  ds.kind = meas::MeasurementKind::kTcpTransfer;
  add_transfer(ds, 0, 1, 50.0, 100.0, 0.04);
  add_transfer(ds, 0, 2, 300.0, 40.0, 0.004);  // only one leg exists
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto results = analyze_bandwidth(table, LossComposition::kOptimistic);
  EXPECT_TRUE(results.empty());
}

TEST(Bandwidth, ZeroLossLegsStillFinite) {
  auto ds = make_dataset(3);
  ds.kind = meas::MeasurementKind::kTcpTransfer;
  add_transfer(ds, 0, 1, 50.0, 100.0, 0.04);
  add_transfer(ds, 0, 2, 300.0, 40.0, 0.0);
  add_transfer(ds, 2, 1, 300.0, 40.0, 0.0);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto results = analyze_bandwidth(table, LossComposition::kOptimistic);
  ASSERT_FALSE(results.empty());
  EXPECT_TRUE(std::isfinite(results[0].alternate_kBps));
  EXPECT_GT(results[0].alternate_kBps, 0.0);
}

TEST(Bandwidth, TracerouteTableAborts) {
  auto ds = make_dataset(3);
  test::add_invocations(ds, 0, 1, 10.0, 2);
  test::add_invocations(ds, 0, 2, 10.0, 2);
  test::add_invocations(ds, 2, 1, 10.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  EXPECT_DEATH((void)analyze_bandwidth(table, LossComposition::kOptimistic),
               "TCP-transfer");
}

}  // namespace
}  // namespace pathsel::core
