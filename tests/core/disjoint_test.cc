// Suurballe/Bhandari k-disjoint alternates: differential tests against
// brute-force path enumeration, degenerate graphs, and the determinism /
// thread-invariance contract.
#include "core/disjoint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <string_view>

#include <gtest/gtest.h>

#include "core/alternate.h"
#include "test_util.h"
#include "util/metrics.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::add_invocations;
using test::make_dataset;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Triangle: direct 0-1 slow (100 ms), detour 0-2-1 fast (30 + 30 ms).
PathTable triangle_table() {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 100.0, 5);
  add_invocations(ds, 0, 2, 30.0, 5);
  add_invocations(ds, 2, 1, 30.0, 5);
  return PathTable::build(ds, test::min_samples(1));
}

const PairDisjointResult* find_pair(
    const std::vector<PairDisjointResult>& results, int a, int b) {
  for (const PairDisjointResult& r : results) {
    if (r.a == topo::HostId{a} && r.b == topo::HostId{b}) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Brute force reference: enumerate all simple alternate paths, then find the
// largest j <= k admitting a mutually disjoint j-subset and the minimal
// total weight over those subsets.

struct RefPath {
  std::vector<std::size_t> edges;  // indices into table.edges()
  std::vector<std::size_t> nodes;  // host indices, endpoints included
  double weight = 0.0;
};

void enumerate_paths(const PathTable& table, std::size_t direct,
                     Metric metric, std::size_t src, std::size_t dst,
                     std::vector<RefPath>& out) {
  const std::size_t n = table.hosts().size();
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);
  for (std::size_t e = 0; e < table.edges().size(); ++e) {
    if (e == direct) continue;
    const PathEdge& edge = table.edges()[e];
    const std::size_t ia = table.host_index(edge.a);
    const std::size_t ib = table.host_index(edge.b);
    adj[ia].push_back({ib, e});
    adj[ib].push_back({ia, e});
  }
  std::vector<char> visited(n, 0);
  RefPath current;
  current.nodes.push_back(src);
  visited[src] = 1;
  auto dfs = [&](auto&& self, std::size_t at) -> void {
    if (at == dst) {
      out.push_back(current);
      return;
    }
    for (const auto& [next, e] : adj[at]) {
      if (visited[next]) continue;
      visited[next] = 1;
      current.nodes.push_back(next);
      current.edges.push_back(e);
      current.weight += edge_weight(table.edges()[e], metric);
      self(self, next);
      current.weight -= edge_weight(table.edges()[e], metric);
      current.edges.pop_back();
      current.nodes.pop_back();
      visited[next] = 0;
    }
  };
  dfs(dfs, src);
}

bool compatible(const RefPath& a, const RefPath& b, DisjointMode mode,
                std::size_t src, std::size_t dst) {
  for (const std::size_t e : a.edges) {
    if (std::find(b.edges.begin(), b.edges.end(), e) != b.edges.end()) {
      return false;
    }
  }
  if (mode == DisjointMode::kNodeDisjoint) {
    for (const std::size_t v : a.nodes) {
      if (v == src || v == dst) continue;
      if (std::find(b.nodes.begin(), b.nodes.end(), v) != b.nodes.end()) {
        return false;
      }
    }
  }
  return true;
}

// Minimal total weight over all mutually disjoint subsets of exactly
// `target` paths; kInf when no such subset exists.
double best_subset(const std::vector<RefPath>& paths, DisjointMode mode,
                   std::size_t src, std::size_t dst, std::size_t target) {
  double best = kInf;
  std::vector<std::size_t> chosen;
  auto rec = [&](auto&& self, std::size_t from, double weight) -> void {
    if (chosen.size() == target) {
      best = std::min(best, weight);
      return;
    }
    for (std::size_t i = from; i < paths.size(); ++i) {
      bool ok = true;
      for (const std::size_t c : chosen) {
        if (!compatible(paths[i], paths[c], mode, src, dst)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      chosen.push_back(i);
      self(self, i + 1, weight + paths[i].weight);
      chosen.pop_back();
    }
  };
  rec(rec, 0, 0.0);
  return best;
}

// Sparse seeded random graph as a dataset: every present edge gets enough
// invocations to pass the min_samples(1) filter, rtt uniform in [10, 200),
// a third of the samples lost so the loss metric is non-trivial.
meas::Dataset random_dataset(int hosts, double edge_prob,
                             std::uint64_t seed) {
  auto ds = make_dataset(hosts);
  std::mt19937_64 rng{seed};
  std::uniform_real_distribution<double> uniform{0.0, 1.0};
  for (int a = 0; a < hosts; ++a) {
    for (int b = a + 1; b < hosts; ++b) {
      if (uniform(rng) >= edge_prob) continue;
      const double rtt = 10.0 + 190.0 * uniform(rng);
      const bool lossy = uniform(rng) < 0.5;
      add_invocation(ds, a, b, {rtt, rtt, rtt});
      add_invocation(ds, a, b,
                     lossy ? std::initializer_list<double>{-1.0, rtt, rtt}
                           : std::initializer_list<double>{rtt, rtt, rtt});
    }
  }
  return ds;
}

// Returns the number of pairs actually cross-checked so callers can assert
// the differential was not vacuous.
std::size_t check_against_brute_force(const PathTable& table, Metric metric,
                                      DisjointMode mode, int k) {
  std::size_t checked = 0;
  DisjointOptions options;
  options.metric = metric;
  options.mode = mode;
  options.k = k;
  options.threads = 1;
  const auto swept = compute_disjoint_alternates(table, options);
  EXPECT_TRUE(swept.is_ok()) << swept.status().to_string();
  if (!swept.is_ok()) return 0;
  EXPECT_EQ(swept.value().size(), table.edges().size());
  if (swept.value().size() != table.edges().size()) return 0;
  for (std::size_t i = 0; i < table.edges().size(); ++i) {
    const PathEdge& edge = table.edges()[i];
    const std::size_t src = table.host_index(edge.a);
    const std::size_t dst = table.host_index(edge.b);
    std::vector<RefPath> all;
    enumerate_paths(table, i, metric, src, dst, all);
    if (all.size() > 400) continue;  // keep the subset search bounded
    const PairDisjointResult& r = swept.value()[i];
    // Largest feasible disjoint set size, capped at k.
    int expect_found = 0;
    double expect_weight = 0.0;
    for (int j = k; j >= 1; --j) {
      const double w = best_subset(all, mode, src, dst,
                                   static_cast<std::size_t>(j));
      if (w < kInf) {
        expect_found = j;
        expect_weight = w;
        break;
      }
    }
    EXPECT_EQ(r.found_k(), expect_found)
        << "pair " << edge.a.value() << "-" << edge.b.value();
    if (expect_found > 0) {
      EXPECT_NEAR(r.total_weight, expect_weight,
                  1e-9 * std::max(1.0, expect_weight))
          << "pair " << edge.a.value() << "-" << edge.b.value();
    }
    // The returned paths must actually be pairwise disjoint.
    for (std::size_t p = 0; p < r.paths.size(); ++p) {
      for (std::size_t q = p + 1; q < r.paths.size(); ++q) {
        std::vector<topo::HostId> shared;
        for (const topo::HostId h : r.paths[p].via) {
          if (std::find(r.paths[q].via.begin(), r.paths[q].via.end(), h) !=
              r.paths[q].via.end()) {
            shared.push_back(h);
          }
        }
        if (mode == DisjointMode::kNodeDisjoint) {
          EXPECT_TRUE(shared.empty());
        }
      }
    }
    ++checked;
  }
  return checked;
}

// ---------------------------------------------------------------------------

TEST(Disjoint, ValidateKRejectsOutOfRange) {
  EXPECT_FALSE(validate_disjoint_k(0, 10).is_ok());
  EXPECT_FALSE(validate_disjoint_k(-3, 10).is_ok());
  EXPECT_TRUE(validate_disjoint_k(1, 3).is_ok());
  EXPECT_FALSE(validate_disjoint_k(2, 3).is_ok());  // N-2 = 1
  EXPECT_TRUE(validate_disjoint_k(8, 10).is_ok());
  EXPECT_FALSE(validate_disjoint_k(9, 10).is_ok());
  EXPECT_FALSE(validate_disjoint_k(1, 2).is_ok());  // no relay exists
  const Status s = validate_disjoint_k(5, 4);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

TEST(Disjoint, ComputeRejectsInvalidK) {
  const auto swept =
      compute_disjoint_alternates(triangle_table(), {.k = 2});
  ASSERT_FALSE(swept.is_ok());
  EXPECT_EQ(swept.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Disjoint, TriangleSingleAlternate) {
  const auto swept =
      compute_disjoint_alternates(triangle_table(), {.k = 1});
  ASSERT_TRUE(swept.is_ok());
  const PairDisjointResult* r = find_pair(swept.value(), 0, 1);
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->default_value, 100.0);
  EXPECT_EQ(r->found_k(), 1);
  EXPECT_EQ(r->requested_k, 1);
  ASSERT_EQ(r->paths.size(), 1u);
  EXPECT_DOUBLE_EQ(r->paths[0].value, 60.0);
  ASSERT_EQ(r->paths[0].via.size(), 1u);
  EXPECT_EQ(r->paths[0].via[0], topo::HostId{2});
}

TEST(Disjoint, ReportsFewerThanRequested) {
  // A 4-host triangle+tail so k=2 passes validation, but the 0-1 pair still
  // has exactly one alternate: found_k < requested_k is data, not an error.
  auto ds = make_dataset(4);
  add_invocations(ds, 0, 1, 100.0, 2);
  add_invocations(ds, 0, 2, 30.0, 2);
  add_invocations(ds, 2, 1, 30.0, 2);
  add_invocations(ds, 2, 3, 10.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto swept = compute_disjoint_alternates(table, {.k = 2});
  ASSERT_TRUE(swept.is_ok());
  const PairDisjointResult* r = find_pair(swept.value(), 0, 1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->requested_k, 2);
  EXPECT_EQ(r->found_k(), 1);
}

TEST(Disjoint, DisconnectedPairReportedEmpty) {
  // Path graph 0-1-2: removing the direct edge disconnects each pair.
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 10.0, 2);
  add_invocations(ds, 1, 2, 10.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto swept = compute_disjoint_alternates(table, {.k = 1});
  ASSERT_TRUE(swept.is_ok());
  ASSERT_EQ(swept.value().size(), 2u);
  for (const PairDisjointResult& r : swept.value()) {
    EXPECT_EQ(r.found_k(), 0);
    EXPECT_TRUE(r.paths.empty());
    EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
  }
}

TEST(Disjoint, BridgeOnlyGraphHasNoDisjointAlternate) {
  // Two triangles joined by a bridge 2-3: the bridge pair loses all
  // connectivity when its direct edge is removed.
  auto ds = make_dataset(6);
  add_invocations(ds, 0, 1, 10.0, 2);
  add_invocations(ds, 1, 2, 10.0, 2);
  add_invocations(ds, 2, 0, 10.0, 2);
  add_invocations(ds, 3, 4, 10.0, 2);
  add_invocations(ds, 4, 5, 10.0, 2);
  add_invocations(ds, 5, 3, 10.0, 2);
  add_invocations(ds, 2, 3, 50.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto swept = compute_disjoint_alternates(table, {.k = 2});
  ASSERT_TRUE(swept.is_ok());
  const PairDisjointResult* bridge = find_pair(swept.value(), 2, 3);
  ASSERT_NE(bridge, nullptr);
  EXPECT_EQ(bridge->found_k(), 0);
  // In-triangle pairs keep their single alternate.
  const PairDisjointResult* tri = find_pair(swept.value(), 0, 1);
  ASSERT_NE(tri, nullptr);
  EXPECT_EQ(tri->found_k(), 1);
}

TEST(Disjoint, NodeModeForbidsSharedRelay) {
  // Two link-disjoint alternates for 0-1 share relay 2: 0-2-1 and
  // 0-3-2-4-1.  Link mode finds both; node mode must drop to one.
  auto ds = make_dataset(5);
  add_invocations(ds, 0, 1, 100.0, 2);
  add_invocations(ds, 0, 2, 10.0, 2);
  add_invocations(ds, 2, 1, 10.0, 2);
  add_invocations(ds, 0, 3, 10.0, 2);
  add_invocations(ds, 3, 2, 10.0, 2);
  add_invocations(ds, 2, 4, 10.0, 2);
  add_invocations(ds, 4, 1, 10.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));

  const auto link = compute_disjoint_alternates(
      table, {.k = 2, .mode = DisjointMode::kLinkDisjoint});
  ASSERT_TRUE(link.is_ok());
  const PairDisjointResult* rl = find_pair(link.value(), 0, 1);
  ASSERT_NE(rl, nullptr);
  EXPECT_EQ(rl->found_k(), 2);

  const auto node = compute_disjoint_alternates(
      table, {.k = 2, .mode = DisjointMode::kNodeDisjoint});
  ASSERT_TRUE(node.is_ok());
  const PairDisjointResult* rn = find_pair(node.value(), 0, 1);
  ASSERT_NE(rn, nullptr);
  EXPECT_EQ(rn->found_k(), 1);
  ASSERT_EQ(rn->paths[0].via.size(), 1u);
  EXPECT_EQ(rn->paths[0].via[0], topo::HostId{2});
}

TEST(Disjoint, FirstPathIsShortestAlternate) {
  // Suurballe's first iteration is a plain shortest alternate path, so the
  // k=1 value must match the unrestricted alternate analysis exactly.
  const auto ds = random_dataset(10, 0.45, 7);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto swept = compute_disjoint_alternates(table, {.k = 1});
  ASSERT_TRUE(swept.is_ok());
  const auto alternates = analyze_alternate_paths(table, AnalyzerOptions{});
  std::size_t matched = 0;
  for (const PairResult& alt : alternates) {
    const PairDisjointResult* r =
        find_pair(swept.value(), alt.a.value(), alt.b.value());
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->found_k(), 1);
    EXPECT_DOUBLE_EQ(r->paths[0].value, alt.alternate_value);
    ++matched;
  }
  EXPECT_GT(matched, 10u);
}

TEST(DisjointDifferential, MatchesBruteForceRtt) {
  std::size_t checked = 0;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const auto ds = random_dataset(8, 0.4, seed);
    const auto table = PathTable::build(ds, test::min_samples(1));
    if (table.hosts().size() < 5 || table.edges().size() < 4) continue;
    for (const int k : {1, 2, 3}) {
      checked += check_against_brute_force(table, Metric::kRtt,
                                           DisjointMode::kLinkDisjoint, k);
    }
  }
  EXPECT_GT(checked, 20u);  // the differential must not be vacuous
}

TEST(DisjointDifferential, MatchesBruteForceLoss) {
  std::size_t checked = 0;
  for (const std::uint64_t seed : {21u, 22u}) {
    const auto ds = random_dataset(8, 0.4, seed);
    const auto table = PathTable::build(ds, test::min_samples(1));
    if (table.hosts().size() < 5 || table.edges().size() < 4) continue;
    for (const int k : {1, 2}) {
      checked += check_against_brute_force(table, Metric::kLoss,
                                           DisjointMode::kLinkDisjoint, k);
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(DisjointDifferential, MatchesBruteForceNodeMode) {
  std::size_t checked = 0;
  for (const std::uint64_t seed : {31u, 32u}) {
    const auto ds = random_dataset(8, 0.4, seed);
    const auto table = PathTable::build(ds, test::min_samples(1));
    if (table.hosts().size() < 5 || table.edges().size() < 4) continue;
    for (const int k : {1, 2}) {
      checked += check_against_brute_force(table, Metric::kRtt,
                                           DisjointMode::kNodeDisjoint, k);
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(DisjointDifferential, LossValueComposes) {
  // Each edge loses 1 sample in 6 across two invocations; the composed
  // alternate loss must be 1 - (1 - l)^2.
  auto ds = make_dataset(3);
  for (const auto& [a, b] : {std::pair{0, 1}, {0, 2}, {2, 1}}) {
    add_invocation(ds, a, b, {10.0, 10.0, 10.0});
    add_invocation(ds, a, b, {-1.0, 10.0, 10.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto swept = compute_disjoint_alternates(
      table, {.metric = Metric::kLoss, .k = 1});
  ASSERT_TRUE(swept.is_ok());
  const PairDisjointResult* r = find_pair(swept.value(), 0, 1);
  ASSERT_NE(r, nullptr);
  const double l = 1.0 / 6.0;
  EXPECT_DOUBLE_EQ(r->default_value, l);
  ASSERT_EQ(r->found_k(), 1);
  EXPECT_NEAR(r->paths[0].value, 1.0 - (1.0 - l) * (1.0 - l), 1e-12);
}

TEST(DisjointThreadInvariance, BitIdenticalAcrossThreadCounts) {
  const auto ds = random_dataset(12, 0.4, 99);
  const auto table = PathTable::build(ds, test::min_samples(1));
  ASSERT_GT(table.edges().size(), 8u);
  std::vector<std::vector<PairDisjointResult>> runs;
  for (const int threads : {1, 4, 8}) {
    DisjointOptions options;
    options.k = 3;
    options.threads = threads;
    const auto swept = compute_disjoint_alternates(table, options);
    ASSERT_TRUE(swept.is_ok());
    runs.push_back(swept.value());
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      const PairDisjointResult& x = runs[0][i];
      const PairDisjointResult& y = runs[run][i];
      EXPECT_EQ(x.a, y.a);
      EXPECT_EQ(x.b, y.b);
      // Bitwise equality, not NEAR: determinism is the contract.
      EXPECT_EQ(x.total_weight, y.total_weight);
      ASSERT_EQ(x.paths.size(), y.paths.size());
      for (std::size_t p = 0; p < x.paths.size(); ++p) {
        EXPECT_EQ(x.paths[p].value, y.paths[p].value);
        EXPECT_EQ(x.paths[p].via, y.paths[p].via);
      }
    }
  }
}

TEST(DisjointCancel, TrippedTokenSurfacesStatus) {
  const auto ds = random_dataset(10, 0.5, 5);
  const auto table = PathTable::build(ds, test::min_samples(1));
  CancelToken token;
  token.cancel();
  DisjointOptions options;
  options.k = 2;
  options.cancel = &token;
  const auto swept = compute_disjoint_alternates(table, options);
  ASSERT_FALSE(swept.is_ok());
  EXPECT_EQ(swept.status().code(), ErrorCode::kCancelled);
}

TEST(DisjointRender, RowsMatchPinnedGolden) {
  // render_disjoint_rows is the single formatter behind both the campaign
  // TSV and `analyze --disjoint --csv`; this inline golden pins the row
  // schema so neither caller can drift.  Covers a found pair, a
  // fewer-than-requested pair, and a disconnected pair (best_value -1).
  std::vector<PairDisjointResult> results;
  {
    PairDisjointResult r;
    r.a = topo::HostId{0};
    r.b = topo::HostId{1};
    r.default_value = 100.0;
    r.requested_k = 2;
    r.paths.push_back({60.0, {topo::HostId{2}}});
    r.paths.push_back({123.456789, {topo::HostId{3}, topo::HostId{4}}});
    r.total_weight = 183.456789;
    results.push_back(std::move(r));
  }
  {
    PairDisjointResult r;
    r.a = topo::HostId{0};
    r.b = topo::HostId{2};
    r.default_value = 0.0416666666666667;
    r.requested_k = 2;
    r.paths.push_back({0.25, {topo::HostId{1}}});
    r.total_weight = 0.287682072451781;
    results.push_back(std::move(r));
  }
  {
    PairDisjointResult r;
    r.a = topo::HostId{5};
    r.b = topo::HostId{9};
    r.default_value = 12.5;
    r.requested_k = 2;
    r.total_weight = 0.0;
    results.push_back(std::move(r));
  }

  const std::string tsv = render_disjoint_rows(results, '\t');
  EXPECT_EQ(tsv,
            "a\tb\trequested_k\tfound_k\tdefault_value\tbest_value\t"
            "total_weight\n"
            "0\t1\t2\t2\t100\t60\t183.457\n"
            "0\t2\t2\t1\t0.0416667\t0.25\t0.287682\n"
            "5\t9\t2\t0\t12.5\t-1\t0\n");

  // Same rows, comma separator: only the delimiter may differ.
  const std::string csv = render_disjoint_rows(results, ',');
  std::string swapped = tsv;
  std::replace(swapped.begin(), swapped.end(), '\t', ',');
  EXPECT_EQ(csv, swapped);
}

TEST(DisjointMetrics, CountersPopulated) {
  MetricsRegistry& m = MetricsRegistry::global();
  m.enable();
  const MetricsSnapshot before = m.snapshot();
  const auto swept =
      compute_disjoint_alternates(triangle_table(), {.k = 1});
  ASSERT_TRUE(swept.is_ok());
  const MetricsSnapshot after = m.snapshot();
  const auto counter = [](const MetricsSnapshot& snap,
                          std::string_view name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    return 0;
  };
  EXPECT_EQ(counter(after, "core.disjoint.sweeps"),
            counter(before, "core.disjoint.sweeps") + 1);
  EXPECT_EQ(counter(after, "core.disjoint.pairs"),
            counter(before, "core.disjoint.pairs") + 3);
}

}  // namespace
}  // namespace pathsel::core
