#include "core/episodes.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::make_dataset;

// Two episodes over a triangle; the direct 0-1 path is bad in episode 0
// (rtt 200) and good in episode 1 (rtt 40).
meas::Dataset episode_dataset() {
  auto ds = make_dataset(3);
  ds.episode_count = 2;
  auto add_episode = [&ds](int ep, double direct) {
    const SimTime t = SimTime::start() + Duration::hours(ep);
    add_invocation(ds, 0, 1, {direct, direct, direct}, t, ep);
    add_invocation(ds, 1, 0, {direct, direct, direct}, t, ep);
    add_invocation(ds, 0, 2, {30.0, 30.0, 30.0}, t, ep);
    add_invocation(ds, 2, 0, {30.0, 30.0, 30.0}, t, ep);
    add_invocation(ds, 1, 2, {30.0, 30.0, 30.0}, t, ep);
    add_invocation(ds, 2, 1, {30.0, 30.0, 30.0}, t, ep);
  };
  add_episode(0, 200.0);
  add_episode(1, 40.0);
  return ds;
}

TEST(Episodes, AnalyzesEachEpisodeSeparately) {
  const auto analysis = analyze_episodes(episode_dataset(), EpisodeOptions{});
  EXPECT_EQ(analysis.episodes_analyzed, 2u);
  // 3 pairs per episode.
  EXPECT_EQ(analysis.pair_episode_points, 6u);
  EXPECT_EQ(analysis.unaveraged.size(), 6u);
  EXPECT_EQ(analysis.pair_averaged.size(), 3u);
}

TEST(Episodes, UnaveragedShowsEpisodeSwings) {
  const auto analysis = analyze_episodes(episode_dataset(), EpisodeOptions{});
  // Pair 0-1: episode 0 improvement = 200 - 60 = 140; episode 1 = 40 - 60 =
  // -20.  Both extremes must appear unaveraged.
  EXPECT_DOUBLE_EQ(analysis.unaveraged.value_at_fraction(1.0), 140.0);
  EXPECT_GE(analysis.unaveraged.fraction_at_or_below(-19.9), 1.0 / 6.0);
}

TEST(Episodes, PairAveragedSmoothsSwings) {
  const auto analysis = analyze_episodes(episode_dataset(), EpisodeOptions{});
  // Pair 0-1 average improvement = (140 - 20) / 2 = 60.
  EXPECT_DOUBLE_EQ(analysis.pair_averaged.value_at_fraction(1.0), 60.0);
}

TEST(Episodes, BroaderTailsUnaveraged) {
  const auto analysis = analyze_episodes(episode_dataset(), EpisodeOptions{});
  EXPECT_GE(analysis.unaveraged.value_at_fraction(1.0),
            analysis.pair_averaged.value_at_fraction(1.0));
  EXPECT_LE(analysis.unaveraged.value_at_fraction(0.0),
            analysis.pair_averaged.value_at_fraction(0.0));
}

TEST(Episodes, LossMetric) {
  EpisodeOptions opt;
  opt.metric = Metric::kLoss;
  const auto analysis = analyze_episodes(episode_dataset(), opt);
  EXPECT_EQ(analysis.episodes_analyzed, 2u);
}

TEST(Episodes, NonEpisodeDatasetAborts) {
  auto ds = make_dataset(3);
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0});
  EXPECT_DEATH((void)analyze_episodes(ds, EpisodeOptions{}), "episode");
}

}  // namespace
}  // namespace pathsel::core
