#include "core/triangulation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocations;
using test::make_dataset;

PathTable prop_table(std::initializer_list<std::tuple<int, int, double>> edges) {
  auto ds = make_dataset(5);
  for (const auto& [a, b, rtt] : edges) {
    add_invocations(ds, a, b, rtt, 5);
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  return PathTable::build(ds, opt);
}

TEST(Triangulation, BoundsBracketForConsistentGeometry) {
  // Points on a line: 0 at x=0, 1 at x=100, 2 at x=40.
  const auto table = prop_table({{0, 1, 100.0}, {0, 2, 40.0}, {2, 1, 60.0}});
  const auto results = triangulate_propagation(table);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_LE(r.lower, r.actual + 1e-9);
    EXPECT_GE(r.upper, r.actual - 1e-9);
  }
  // The 0-1 pair: lower = |40-60| = 20... wait: lower = |p(0,2)-p(2,1)| = 20,
  // upper = 40 + 60 = 100 = actual (collinear).
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.upper, 100.0);
      EXPECT_DOUBLE_EQ(r.lower, 20.0);
      EXPECT_EQ(r.upper_via, topo::HostId{2});
    }
  }
}

TEST(Triangulation, PicksBestOfSeveralThirdHosts) {
  const auto table = prop_table({{0, 1, 100.0},
                                 {0, 2, 80.0},
                                 {2, 1, 80.0},
                                 {0, 3, 55.0},
                                 {3, 1, 50.0}});
  const auto results = triangulate_propagation(table);
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_DOUBLE_EQ(r.upper, 105.0);  // via host 3, not 160 via host 2
      EXPECT_EQ(r.upper_via, topo::HostId{3});
      EXPECT_DOUBLE_EQ(r.lower, 5.0);    // |55 - 50|
    }
  }
}

TEST(Triangulation, PairWithoutThirdHostOmitted) {
  const auto table = prop_table({{0, 1, 100.0}, {2, 3, 50.0}});
  const auto results = triangulate_propagation(table);
  EXPECT_TRUE(results.empty());
}

TEST(Triangulation, AccuracyCdfCentersNearOne) {
  // Fully consistent metric space: estimates overshoot (upper bound) but by
  // bounded factors.
  const auto table = prop_table({{0, 1, 100.0},
                                 {0, 2, 40.0},
                                 {2, 1, 60.0},
                                 {0, 3, 70.0},
                                 {3, 1, 35.0},
                                 {2, 3, 30.0}});
  const auto results = triangulate_propagation(table);
  const auto cdf = triangulation_accuracy_cdf(results);
  ASSERT_FALSE(cdf.empty());
  EXPECT_GE(cdf.value_at_fraction(0.0), 1.0 - 1e-9);  // upper bound >= actual
  EXPECT_LT(cdf.value_at_fraction(1.0), 5.0);
}

TEST(Triangulation, RequiresRetainedSamples) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 10.0, 2);
  add_invocations(ds, 0, 2, 10.0, 2);
  add_invocations(ds, 2, 1, 10.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  EXPECT_DEATH((void)triangulate_propagation(table), "retained");
}

}  // namespace
}  // namespace pathsel::core
