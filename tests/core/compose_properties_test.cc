// Property-based tests for metric composition (compose_metric /
// compose_estimate / edge_weight).
//
// Rather than pinning a handful of hand-computed values, these tests state
// the algebraic laws the paper's composition rules must satisfy — RTT adds;
// loss combines as independent per-hop survival, so it is order-invariant,
// monotone in every hop, and bounded by [max hop, 1]; the delta-method
// variance is non-negative and collapses to zero for point estimates — and
// then check them over seeded random edge sets.  Anything these laws flush
// out is a composition bug, not a test artifact.
#include "core/alternate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/path_table.h"
#include "test_util.h"
#include "util/rng.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::make_dataset;

// Builds a chain 0-1-2-...-n of edges where edge i has roughly loss_rate[i]
// loss and rtt levels rtt_ms[i], with `invocations` 3-sample invocations per
// edge (invocations == 1 yields single-invocation "degraded" edges whose
// loss summaries still hold 3 samples but whose RTT spread is one probe).
PathTable chain_table(const std::vector<double>& rtt_ms,
                      const std::vector<double>& loss_rate, int invocations,
                      Rng& rng) {
  EXPECT_EQ(rtt_ms.size(), loss_rate.size());
  auto ds = make_dataset(static_cast<int>(rtt_ms.size()) + 1);
  for (std::size_t e = 0; e < rtt_ms.size(); ++e) {
    for (int v = 0; v < invocations; ++v) {
      meas::Measurement m;
      m.src = topo::HostId{static_cast<int>(e)};
      m.dst = topo::HostId{static_cast<int>(e) + 1};
      m.completed = true;
      bool any_ok = false;
      for (auto& s : m.samples) {
        s.lost = rng.bernoulli(loss_rate[e]);
        s.rtt_ms = rtt_ms[e] + rng.uniform(0.0, 2.0);
        any_ok = any_ok || !s.lost;
      }
      if (!any_ok) m.samples[0].lost = false;
      ds.measurements.push_back(std::move(m));
    }
  }
  return PathTable::build(ds, test::min_samples(1));
}

// The chain's edges as a composable path 0 -> n.
std::vector<const PathEdge*> chain_edges(const PathTable& table) {
  std::vector<const PathEdge*> edges;
  for (std::size_t e = 0; e + 1 <= table.hosts().size() - 1; ++e) {
    const auto* edge = table.find(topo::HostId{static_cast<int>(e)},
                                  topo::HostId{static_cast<int>(e) + 1});
    EXPECT_NE(edge, nullptr);
    edges.push_back(edge);
  }
  return edges;
}

TEST(ComposeProperties, RttIsTheSumOfHopMeans) {
  Rng rng{31};
  for (int trial = 0; trial < 10; ++trial) {
    const int hops = 2 + trial % 4;
    std::vector<double> rtts, losses;
    for (int e = 0; e < hops; ++e) {
      rtts.push_back(rng.uniform(5.0, 200.0));
      losses.push_back(0.0);
    }
    const auto table = chain_table(rtts, losses, 3, rng);
    const auto edges = chain_edges(table);
    double sum = 0.0;
    for (const auto* e : edges) sum += edge_metric_value(*e, Metric::kRtt);
    EXPECT_NEAR(compose_metric(edges, Metric::kRtt), sum, 1e-9);

    // The composed estimate is the sum of the per-hop estimates.
    const auto est = compose_estimate(edges, Metric::kRtt);
    double mean_sum = 0.0, var_sum = 0.0;
    for (const auto* e : edges) {
      const auto one = stats::MeanEstimate::from_summary(e->rtt);
      mean_sum += one.mean;
      var_sum += one.var_of_mean;
    }
    EXPECT_NEAR(est.mean, mean_sum, 1e-9);
    EXPECT_NEAR(est.var_of_mean, var_sum, 1e-12);
  }
}

TEST(ComposeProperties, LossIsOrderInvariant) {
  Rng rng{32};
  for (int trial = 0; trial < 10; ++trial) {
    const int hops = 3 + trial % 3;
    std::vector<double> rtts, losses;
    for (int e = 0; e < hops; ++e) {
      rtts.push_back(10.0);
      losses.push_back(rng.uniform(0.0, 0.4));
    }
    const auto table = chain_table(rtts, losses, 4, rng);
    auto edges = chain_edges(table);
    const double forward = compose_metric(edges, Metric::kLoss);
    std::reverse(edges.begin(), edges.end());
    EXPECT_NEAR(compose_metric(edges, Metric::kLoss), forward, 1e-12);
    // A rotation too, not just the mirror image.
    std::rotate(edges.begin(), edges.begin() + 1, edges.end());
    EXPECT_NEAR(compose_metric(edges, Metric::kLoss), forward, 1e-12);
  }
}

TEST(ComposeProperties, LossIsBoundedAndMonotone) {
  Rng rng{33};
  for (int trial = 0; trial < 10; ++trial) {
    const int hops = 2 + trial % 4;
    std::vector<double> rtts, losses;
    for (int e = 0; e < hops; ++e) {
      rtts.push_back(10.0);
      losses.push_back(rng.uniform(0.0, 0.5));
    }
    const auto table = chain_table(rtts, losses, 4, rng);
    const auto edges = chain_edges(table);

    double max_hop = 0.0;
    for (const auto* e : edges) {
      max_hop = std::max(max_hop,
                         std::min(edge_metric_value(*e, Metric::kLoss),
                                  kMaxComposableLoss));
    }
    const double composed = compose_metric(edges, Metric::kLoss);
    EXPECT_GE(composed, max_hop - 1e-12);  // never better than the worst hop
    EXPECT_LE(composed, 1.0);

    // Monotone per hop: every prefix loses no less than the one before it.
    for (std::size_t k = 1; k <= edges.size(); ++k) {
      const std::span<const PathEdge* const> prefix{edges.data(), k};
      const std::span<const PathEdge* const> shorter{edges.data(), k - 1};
      const double longer_loss = compose_metric(prefix, Metric::kLoss);
      const double shorter_loss =
          k == 1 ? 0.0 : compose_metric(shorter, Metric::kLoss);
      EXPECT_GE(longer_loss, shorter_loss - 1e-12);
    }
  }
}

TEST(ComposeProperties, TotallyLossyHopStaysFiniteAndDominant) {
  // A hop at 100% measured loss clamps to kMaxComposableLoss: the additive
  // weight stays finite and the composed loss lands in [0.999, 1].  Under
  // the D2 heuristic only the first sample counts toward loss, so an edge
  // can measure total loss while still carrying the two RTT samples the
  // build filter demands.
  auto ds = make_dataset(3);
  ds.first_sample_loss_only = true;
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0});
  for (int v = 0; v < 3; ++v) {
    add_invocation(ds, 1, 2, {-1.0, 10.0, 10.0});  // counted sample lost
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto* lossy = table.find(topo::HostId{1}, topo::HostId{2});
  ASSERT_NE(lossy, nullptr);
  EXPECT_TRUE(std::isfinite(edge_weight(*lossy, Metric::kLoss)));

  const auto edges = chain_edges(table);
  const double composed = compose_metric(edges, Metric::kLoss);
  EXPECT_GE(composed, kMaxComposableLoss - 1e-12);
  EXPECT_LE(composed, 1.0);
}

TEST(ComposeProperties, EstimateVarianceIsNonNegative) {
  Rng rng{35};
  for (const Metric metric : {Metric::kRtt, Metric::kLoss}) {
    for (int trial = 0; trial < 10; ++trial) {
      const int hops = 2 + trial % 4;
      std::vector<double> rtts, losses;
      for (int e = 0; e < hops; ++e) {
        rtts.push_back(rng.uniform(5.0, 100.0));
        losses.push_back(rng.uniform(0.0, 0.3));
      }
      const auto table = chain_table(rtts, losses, 4, rng);
      const auto est = compose_estimate(chain_edges(table), metric);
      EXPECT_GE(est.var_of_mean, 0.0);
      EXPECT_GE(est.dof_denom, 0.0);
      EXPECT_TRUE(std::isfinite(est.mean));
    }
  }
}

TEST(ComposeProperties, EstimateMeanTracksComposedMetric) {
  // For loss, compose_estimate's mean is the same complement-product the
  // point value uses (the delta method linearises the variance, not the
  // mean); for RTT both are plain sums.
  Rng rng{36};
  for (const Metric metric : {Metric::kRtt, Metric::kLoss}) {
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<double> rtts{20.0, 40.0, 80.0};
      std::vector<double> losses{0.1, 0.2, 0.05};
      const auto table = chain_table(rtts, losses, 5, rng);
      const auto edges = chain_edges(table);
      EXPECT_NEAR(compose_estimate(edges, metric).mean,
                  compose_metric(edges, metric), 1e-9);
    }
  }
}

TEST(ComposeProperties, PointEstimatesCarryZeroVariance) {
  // Under the D2 heuristic (first_sample_loss_only) a single-invocation
  // edge contributes exactly one loss observation.  There is no spread to
  // propagate, so the composed estimate must degrade to a point value —
  // zero variance and dof — not a negative or garbage one.
  auto ds = make_dataset(3);
  ds.first_sample_loss_only = true;
  add_invocation(ds, 0, 1, {25.0, 25.0, 25.0});
  add_invocation(ds, 1, 2, {-1.0, 30.0, 30.0});  // the counted sample: lost
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto edges = chain_edges(table);
  ASSERT_EQ(edges.size(), 2u);
  ASSERT_EQ(edges[0]->loss.count(), 1);
  ASSERT_EQ(edges[1]->loss.count(), 1);
  EXPECT_DOUBLE_EQ(edges[1]->loss.mean(), 1.0);

  const auto est = compose_estimate(edges, Metric::kLoss);
  EXPECT_DOUBLE_EQ(est.var_of_mean, 0.0);
  EXPECT_DOUBLE_EQ(est.dof_denom, 0.0);
  // The mean still composes: 1 - (1 - 0)(1 - min(1, kMaxComposableLoss)).
  EXPECT_DOUBLE_EQ(est.mean, kMaxComposableLoss);
}

TEST(EdgeWeight, LossUsesNegLogSurvival) {
  // edge_weight is -log(1 - p) for loss and the raw metric for RTT; the
  // clamp keeps an all-lost edge finite at -log(1 - kMaxComposableLoss).
  auto ds = make_dataset(2);
  for (int i = 0; i < 4; ++i) {
    add_invocation(ds, 0, 1, {10.0, i == 0 ? -1.0 : 10.0, 10.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto* edge = table.find(topo::HostId{0}, topo::HostId{1});
  ASSERT_NE(edge, nullptr);

  const double p = edge_metric_value(*edge, Metric::kLoss);
  EXPECT_NEAR(p, 1.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(edge_weight(*edge, Metric::kLoss), -std::log(1.0 - p));
  EXPECT_DOUBLE_EQ(edge_weight(*edge, Metric::kRtt),
                   edge_metric_value(*edge, Metric::kRtt));
  // Weight of a hypothetical total-loss hop: the documented clamp value.
  EXPECT_NEAR(-std::log(1.0 - kMaxComposableLoss), 6.9077552789821368,
              1e-12);
}

}  // namespace
}  // namespace pathsel::core
