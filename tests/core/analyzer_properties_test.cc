// Property tests of the alternate-path analyzer over randomized path
// tables: invariants that must hold for any input, regardless of shape.
#include <gtest/gtest.h>

#include "core/alternate.h"
#include "core/path_table.h"
#include "test_util.h"
#include "util/rng.h"

namespace pathsel::core {
namespace {

// A random complete-ish path table over `hosts` hosts: every pair measured
// with probability `density`, RTTs lognormal, loss occasional.
PathTable random_table(std::uint64_t seed, int hosts, double density) {
  Rng rng{seed};
  auto ds = test::make_dataset(hosts);
  for (int i = 0; i < hosts; ++i) {
    for (int j = i + 1; j < hosts; ++j) {
      if (!rng.bernoulli(density)) continue;
      const double base = rng.lognormal(4.0, 0.6);  // ~30-150 ms
      const double loss_p = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.15) : 0.0;
      for (int k = 0; k < 6; ++k) {
        const double r1 = rng.bernoulli(loss_p) ? -1.0 : base + rng.uniform(0, 10);
        const double r2 = rng.bernoulli(loss_p) ? -1.0 : base + rng.uniform(0, 10);
        const double r3 = rng.bernoulli(loss_p) ? -1.0 : base + rng.uniform(0, 10);
        test::add_invocation(ds, i, j, {r1, r2, r3});
      }
    }
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  return PathTable::build(ds, opt);
}

class AnalyzerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerSweep, AlternateNeverUsesDirectEdge) {
  const auto table = random_table(GetParam(), 10, 0.8);
  for (const auto& r : analyze_alternate_paths(table, {})) {
    // The via chain never degenerates to the direct edge.
    EXPECT_FALSE(r.via.empty());
    for (const auto h : r.via) {
      EXPECT_NE(h, r.a);
      EXPECT_NE(h, r.b);
    }
  }
}

TEST_P(AnalyzerSweep, AlternateValueMatchesViaChain) {
  const auto table = random_table(GetParam(), 10, 0.8);
  for (const auto& r : analyze_alternate_paths(table, {})) {
    std::vector<topo::HostId> chain{r.a};
    chain.insert(chain.end(), r.via.begin(), r.via.end());
    chain.push_back(r.b);
    std::vector<const PathEdge*> edges;
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const auto* e = table.find(chain[i], chain[i + 1]);
      ASSERT_NE(e, nullptr);
      edges.push_back(e);
    }
    EXPECT_NEAR(compose_metric(edges, Metric::kRtt), r.alternate_value, 1e-9);
  }
}

TEST_P(AnalyzerSweep, NoTwoHopChainBeatsReportedAlternate) {
  // Exhaustive check against all one- and two-intermediate chains.
  const auto table = random_table(GetParam(), 8, 0.9);
  const auto results = analyze_alternate_paths(table, {});
  for (const auto& r : results) {
    for (const auto c1 : table.hosts()) {
      if (c1 == r.a || c1 == r.b) continue;
      const auto* e1 = table.find(r.a, c1);
      if (e1 == nullptr) continue;
      const auto* direct_leg = table.find(c1, r.b);
      if (direct_leg != nullptr) {
        EXPECT_GE(e1->rtt.mean() + direct_leg->rtt.mean(),
                  r.alternate_value - 1e-9);
      }
      for (const auto c2 : table.hosts()) {
        if (c2 == r.a || c2 == r.b || c2 == c1) continue;
        const auto* e2 = table.find(c1, c2);
        const auto* e3 = table.find(c2, r.b);
        if (e2 == nullptr || e3 == nullptr) continue;
        EXPECT_GE(e1->rtt.mean() + e2->rtt.mean() + e3->rtt.mean(),
                  r.alternate_value - 1e-9);
      }
    }
  }
}

TEST_P(AnalyzerSweep, LossAlternateAtLeastMaxLeg) {
  const auto table = random_table(GetParam(), 10, 0.8);
  AnalyzerOptions opt;
  opt.metric = Metric::kLoss;
  for (const auto& r : analyze_alternate_paths(table, opt)) {
    std::vector<topo::HostId> chain{r.a};
    chain.insert(chain.end(), r.via.begin(), r.via.end());
    chain.push_back(r.b);
    double max_leg = 0.0;
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const auto* e = table.find(chain[i], chain[i + 1]);
      ASSERT_NE(e, nullptr);
      max_leg = std::max(max_leg, e->loss.mean());
    }
    // Independent composition can never fall below the worst leg.
    EXPECT_GE(r.alternate_value, max_leg - 1e-12);
    EXPECT_LE(r.alternate_value, 1.0);
  }
}

TEST_P(AnalyzerSweep, RatioAndImprovementAgreeOnSign) {
  const auto table = random_table(GetParam(), 10, 0.8);
  for (const auto& r : analyze_alternate_paths(table, {})) {
    if (r.improvement() > 0.0) {
      EXPECT_GT(r.ratio(), 1.0);
    } else if (r.improvement() < 0.0) {
      EXPECT_LT(r.ratio(), 1.0);
    }
  }
}

TEST_P(AnalyzerSweep, HopBudgetMonotone) {
  const auto table = random_table(GetParam(), 10, 0.7);
  AnalyzerOptions h1;
  h1.max_intermediate_hosts = 1;
  AnalyzerOptions h2;
  h2.max_intermediate_hosts = 2;
  AnalyzerOptions h3;
  h3.max_intermediate_hosts = 3;
  const auto r1 = analyze_alternate_paths(table, h1);
  const auto r2 = analyze_alternate_paths(table, h2);
  const auto r3 = analyze_alternate_paths(table, h3);
  const auto unlimited = analyze_alternate_paths(table, {});
  // Key results by pair for comparison (hop budgets can change which pairs
  // have any alternate at all).
  auto value = [](const std::vector<PairResult>& rs, topo::HostId a,
                  topo::HostId b) -> double {
    for (const auto& r : rs) {
      if (r.a == a && r.b == b) return r.alternate_value;
    }
    return -1.0;
  };
  for (const auto& r : unlimited) {
    const double v1 = value(r1, r.a, r.b);
    const double v2 = value(r2, r.a, r.b);
    const double v3 = value(r3, r.a, r.b);
    if (v1 >= 0.0 && v2 >= 0.0) {
      EXPECT_LE(v2, v1 + 1e-9);
    }
    if (v2 >= 0.0 && v3 >= 0.0) {
      EXPECT_LE(v3, v2 + 1e-9);
    }
    if (v3 >= 0.0) {
      EXPECT_LE(r.alternate_value, v3 + 1e-9);
    }
  }
}

TEST_P(AnalyzerSweep, DeterministicAcrossRuns) {
  const auto table = random_table(GetParam(), 10, 0.8);
  const auto a = analyze_alternate_paths(table, {});
  const auto b = analyze_alternate_paths(table, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].via, b[i].via);
    EXPECT_DOUBLE_EQ(a[i].alternate_value, b[i].alternate_value);
  }
}

TEST_P(AnalyzerSweep, SparseTablesNeverAbort) {
  const auto table = random_table(GetParam(), 12, 0.15);
  const auto results = analyze_alternate_paths(table, {});
  // Sparse graphs may have few or no alternates; whatever comes back must be
  // internally consistent.
  for (const auto& r : results) {
    EXPECT_GT(r.alternate_value, 0.0);
    EXPECT_NE(r.a, r.b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerSweep,
                         ::testing::Values(1, 7, 13, 19, 29, 37, 43, 53, 61,
                                           71));

}  // namespace
}  // namespace pathsel::core
