#include "core/figures.h"

#include <gtest/gtest.h>

namespace pathsel::core {
namespace {

PairResult pair(double def, double alt) {
  PairResult r;
  r.a = topo::HostId{0};
  r.b = topo::HostId{1};
  r.default_value = def;
  r.alternate_value = alt;
  return r;
}

BandwidthPairResult bw_pair(double def, double alt) {
  BandwidthPairResult r;
  r.default_kBps = def;
  r.alternate_kBps = alt;
  return r;
}

TEST(Figures, ImprovementCdfSign) {
  const std::vector<PairResult> results{pair(100, 60), pair(50, 70)};
  const auto cdf = improvement_cdf(results);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(1.0), 40.0);
}

TEST(Figures, RatioCdf) {
  const std::vector<PairResult> results{pair(100, 50), pair(60, 60)};
  const auto cdf = ratio_cdf(results);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(1.0), 2.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(1.0), 0.5);
}

TEST(Figures, BandwidthImprovementIsAltMinusDefault) {
  const std::vector<BandwidthPairResult> results{bw_pair(100, 300),
                                                 bw_pair(200, 100)};
  const auto cdf = bandwidth_improvement_cdf(results);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(1.0), 200.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(0.0), 0.5);
}

TEST(Figures, BandwidthRatioIsAltOverDefault) {
  const std::vector<BandwidthPairResult> results{bw_pair(100, 300)};
  const auto cdf = bandwidth_ratio_cdf(results);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(1.0), 3.0);
}

TEST(Figures, FractionImproved) {
  const std::vector<PairResult> results{pair(100, 60), pair(50, 70),
                                        pair(10, 10)};
  EXPECT_NEAR(fraction_improved(std::span<const PairResult>(results)),
              1.0 / 3.0, 1e-12);
}

TEST(Figures, FractionImprovedBandwidth) {
  const std::vector<BandwidthPairResult> results{bw_pair(100, 300),
                                                 bw_pair(100, 90)};
  EXPECT_DOUBLE_EQ(
      fraction_improved(std::span<const BandwidthPairResult>(results)), 0.5);
}

TEST(Figures, EmptyInputs) {
  EXPECT_DOUBLE_EQ(fraction_improved(std::span<const PairResult>{}), 0.0);
  EXPECT_TRUE(improvement_cdf(std::span<const PairResult>{}).empty());
}

TEST(Figures, LossRatioGuardsZeroDenominator) {
  PairResult r = pair(0.05, 0.0);
  EXPECT_DOUBLE_EQ(r.ratio(), 1.0);  // alternate == 0: ratio defined as 1
}

}  // namespace
}  // namespace pathsel::core
