#include "core/median.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::make_dataset;

PathTable sample_table() {
  auto ds = make_dataset(3);
  // Direct 0-1 around 100; legs around 30 each.
  for (int i = 0; i < 30; ++i) {
    const double jitter = static_cast<double>(i % 5);
    add_invocation(ds, 0, 1, {100.0 + jitter, 101.0 + jitter, 99.0 + jitter});
    add_invocation(ds, 0, 2, {30.0 + jitter, 30.0, 31.0});
    add_invocation(ds, 2, 1, {30.0 + jitter, 30.0, 29.0});
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  return PathTable::build(ds, opt);
}

TEST(Median, FindsDetourByMedian) {
  const auto results = analyze_median_alternates(sample_table());
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_NEAR(r.default_median, 101.0, 2.0);
      EXPECT_NEAR(r.alternate_median, 61.0, 4.0);
      EXPECT_EQ(r.via, topo::HostId{2});
      EXPECT_GT(r.improvement(), 0.0);
    }
  }
}

TEST(Median, AgreesWithMeanForSymmetricNoise) {
  // The paper's Figure 6 point: mean- and median-based analyses agree when
  // distributions are not heavily skewed.
  const auto table = sample_table();
  const auto medians = analyze_median_alternates(table);
  AnalyzerOptions mean_opt;
  mean_opt.max_intermediate_hosts = 1;
  const auto means = analyze_alternate_paths(table, mean_opt);
  ASSERT_EQ(medians.size(), means.size());
  for (std::size_t i = 0; i < medians.size(); ++i) {
    EXPECT_NEAR(medians[i].improvement(), means[i].improvement(), 6.0);
  }
}

TEST(Median, SkewResistance) {
  // Heavy outliers pull the mean but not the median: direct path has 10%
  // samples at 1000 ms.  The median comparison must stay near the base rtt.
  auto ds = make_dataset(3);
  for (int i = 0; i < 30; ++i) {
    const double spike = i % 10 == 0 ? 1000.0 : 50.0;
    add_invocation(ds, 0, 1, {spike, 50.0, 50.0});
    add_invocation(ds, 0, 2, {30.0, 30.0, 30.0});
    add_invocation(ds, 2, 1, {30.0, 30.0, 30.0});
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  const auto table = PathTable::build(ds, opt);
  const auto medians = analyze_median_alternates(table);
  for (const auto& r : medians) {
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_NEAR(r.default_median, 50.0, 5.0);
    }
  }
  // The mean for the same pair is inflated by the spikes.
  const auto* direct = table.find(topo::HostId{0}, topo::HostId{1});
  EXPECT_GT(direct->rtt.mean(), 75.0);
}

TEST(Median, NoOneHopAlternateOmitsPair) {
  auto ds = make_dataset(3);
  for (int i = 0; i < 5; ++i) {
    add_invocation(ds, 0, 1, {50.0, 50.0, 50.0});
    add_invocation(ds, 0, 2, {30.0, 30.0, 30.0});
  }
  BuildOptions opt;
  opt.min_samples = 1;
  opt.keep_samples = true;
  const auto table = PathTable::build(ds, opt);
  const auto medians = analyze_median_alternates(table);
  EXPECT_TRUE(medians.empty());
}

TEST(Median, BinWidthConfigurable) {
  const auto table = sample_table();
  MedianOptions coarse;
  coarse.bin_width_ms = 20.0;
  MedianOptions fine;
  fine.bin_width_ms = 1.0;
  const auto rc = analyze_median_alternates(table, coarse);
  const auto rf = analyze_median_alternates(table, fine);
  ASSERT_EQ(rc.size(), rf.size());
  for (std::size_t i = 0; i < rc.size(); ++i) {
    EXPECT_NEAR(rc[i].alternate_median, rf[i].alternate_median, 25.0);
  }
}

TEST(Median, RequiresRetainedSamples) {
  auto ds = make_dataset(3);
  test::add_invocations(ds, 0, 1, 10.0, 2);
  test::add_invocations(ds, 0, 2, 10.0, 2);
  test::add_invocations(ds, 2, 1, 10.0, 2);
  const auto table = PathTable::build(ds, test::min_samples(1));
  EXPECT_DEATH((void)analyze_median_alternates(table), "retained");
}

TEST(Median, InvalidBinWidthAborts) {
  const auto table = sample_table();
  MedianOptions opt;
  opt.bin_width_ms = 0.0;
  EXPECT_DEATH((void)analyze_median_alternates(table, opt), "positive");
}

}  // namespace
}  // namespace pathsel::core
