// SIMD dispatch and lane-level edge cases for the dense min-plus kernel.
//
// The differential suite (dense_kernel_diff_test.cc) proves SIMD ≡ scalar ≡
// search end to end over the 21 seeded tables; this file attacks the places
// a vectorized arg-min can silently diverge: matrix sizes that are not a
// multiple of the 4-lane vector width (ragged tails), all-+inf rows, equal-
// cost relays whose ties land on every lane position, the PATHSEL_SIMD /
// AnalyzerOptions dispatch precedence, and the memory-estimate guard that
// replaced the old fixed 8192-host auto cap.
#include "core/dense_kernel.h"

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/alternate.h"
#include "util/rng.h"

namespace pathsel::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Random asymmetric weight matrix: each off-diagonal cell is finite with
// probability `density` (min_plus_square requires no symmetry; the sweep
// builds symmetric matrices but the kernel contract is general).
WeightMatrix random_matrix(std::size_t n, double density, std::uint64_t seed) {
  WeightMatrix w;
  w.n = n;
  w.w.assign(n * n, kInf);
  Rng rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !rng.bernoulli(density)) continue;
      w.w[i * n + j] = rng.uniform(1.0, 100.0);
    }
  }
  return w;
}

MinPlusSquare square(const WeightMatrix& w, SimdMode simd, int threads = 1) {
  auto result = min_plus_square(w, threads, nullptr, simd);
  EXPECT_TRUE(result.is_ok());
  return std::move(result.value());
}

// Bitwise equality: doubles compared through memcmp so even a ±0.0 or NaN
// payload difference would surface (the kernel never produces NaNs, but the
// check must not paper over one).
void expect_bitwise_equal(const MinPlusSquare& a, const MinPlusSquare& b) {
  ASSERT_EQ(a.n, b.n);
  ASSERT_EQ(a.best.size(), b.best.size());
  ASSERT_EQ(a.via, b.via);
  EXPECT_EQ(std::memcmp(a.best.data(), b.best.data(),
                        a.best.size() * sizeof(double)),
            0);
}

// Reference arg-min for one matrix, straight from the definition.
MinPlusSquare brute_force(const WeightMatrix& w) {
  MinPlusSquare out;
  out.n = w.n;
  out.best.assign(w.n * w.n, kInf);
  out.via.assign(w.n * w.n, kNoRelay);
  for (std::size_t i = 0; i < w.n; ++i) {
    for (std::size_t j = 0; j < w.n; ++j) {
      for (std::size_t k = 0; k < w.n; ++k) {
        const double cand = w.w[i * w.n + k] + w.w[k * w.n + j];
        if (cand < out.best[i * w.n + j]) {
          out.best[i * w.n + j] = cand;
          out.via[i * w.n + j] = static_cast<std::int32_t>(k);
        }
      }
    }
  }
  return out;
}

class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    if (const char* old = std::getenv("PATHSEL_SIMD")) saved_ = old;
    ::setenv("PATHSEL_SIMD", value, 1);
  }
  ~ScopedSimdEnv() {
    if (saved_.empty()) {
      ::unsetenv("PATHSEL_SIMD");
    } else {
      ::setenv("PATHSEL_SIMD", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(DenseKernelSimd, DispatchResolvesCoherently) {
  ::unsetenv("PATHSEL_SIMD");
  EXPECT_EQ(resolve_simd_mode(SimdMode::kScalar), SimdMode::kScalar);
  EXPECT_EQ(resolve_simd_mode(SimdMode::kAvx2),
            avx2_supported() ? SimdMode::kAvx2 : SimdMode::kScalar);
  const SimdMode resolved = resolve_simd_mode(SimdMode::kAuto);
  EXPECT_NE(resolved, SimdMode::kAuto);
  // kAuto picks the widest supported path.
  EXPECT_EQ(resolved, avx2_supported() ? SimdMode::kAvx2 : SimdMode::kScalar);
  EXPECT_STREQ(simd_mode_name(SimdMode::kAuto), "auto");
  EXPECT_STREQ(simd_mode_name(SimdMode::kAvx2), "avx2");
  EXPECT_STREQ(simd_mode_name(SimdMode::kScalar), "scalar");
}

TEST(DenseKernelSimd, EnvSteersAutoButNotExplicitRequests) {
  {
    ScopedSimdEnv env{"scalar"};
    EXPECT_EQ(resolve_simd_mode(SimdMode::kAuto), SimdMode::kScalar);
    // An explicit AnalyzerOptions request outranks the environment.
    EXPECT_EQ(resolve_simd_mode(SimdMode::kAvx2),
              avx2_supported() ? SimdMode::kAvx2 : SimdMode::kScalar);
  }
  {
    ScopedSimdEnv env{"avx2"};
    EXPECT_EQ(resolve_simd_mode(SimdMode::kAuto),
              avx2_supported() ? SimdMode::kAvx2 : SimdMode::kScalar);
    EXPECT_EQ(resolve_simd_mode(SimdMode::kScalar), SimdMode::kScalar);
  }
  {
    // Unknown values warn (once) and mean auto; they must not abort.
    ScopedSimdEnv env{"sse9"};
    EXPECT_EQ(resolve_simd_mode(SimdMode::kAuto),
              avx2_supported() ? SimdMode::kAvx2 : SimdMode::kScalar);
  }
}

TEST(DenseKernelSimd, BitIdenticalAcrossRaggedWidths) {
  // Sizes straddling every tail length mod 4 (the vector width), the row
  // chunk (8), and the k/j block boundaries.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{6}, std::size_t{7}, std::size_t{9},
        std::size_t{15}, std::size_t{17}, std::size_t{33}, std::size_t{64},
        std::size_t{65}}) {
    SCOPED_TRACE(testing::Message() << "n=" << n);
    const WeightMatrix w = random_matrix(n, 0.6, 1000 + n);
    const MinPlusSquare scalar = square(w, SimdMode::kScalar);
    const MinPlusSquare simd = square(w, SimdMode::kAvx2);
    expect_bitwise_equal(scalar, simd);
    const MinPlusSquare reference = brute_force(w);
    expect_bitwise_equal(scalar, reference);
  }
}

TEST(DenseKernelSimd, ThreadCountInvariantUnderEveryMode) {
  const WeightMatrix w = random_matrix(65, 0.7, 77);
  for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
    SCOPED_TRACE(testing::Message() << "simd=" << simd_mode_name(simd));
    const MinPlusSquare base = square(w, simd, 1);
    for (const int threads : {2, 3, 4, 8}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads);
      expect_bitwise_equal(base, square(w, simd, threads));
    }
  }
}

TEST(DenseKernelSimd, AllInfRowsStayInfEverywhere) {
  // Hosts 3 and 4 are isolated (their rows and columns are all +inf) in a
  // 9-host matrix: no cell may ever pick them as a relay, and every cell
  // whose endpoints include them stays (+inf, kNoRelay) under both modes.
  WeightMatrix w = random_matrix(9, 1.0, 42);
  for (std::size_t iso : {std::size_t{3}, std::size_t{4}}) {
    for (std::size_t j = 0; j < w.n; ++j) {
      w.w[iso * w.n + j] = kInf;
      w.w[j * w.n + iso] = kInf;
    }
  }
  for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
    SCOPED_TRACE(testing::Message() << "simd=" << simd_mode_name(simd));
    const MinPlusSquare mp = square(w, simd);
    for (std::size_t i = 0; i < w.n; ++i) {
      for (std::size_t j = 0; j < w.n; ++j) {
        EXPECT_NE(mp.via[i * w.n + j], 3);
        EXPECT_NE(mp.via[i * w.n + j], 4);
        if (i == 3 || i == 4 || j == 3 || j == 4) {
          EXPECT_EQ(mp.best[i * w.n + j], kInf);
          EXPECT_EQ(mp.via[i * w.n + j], kNoRelay);
        }
      }
    }
  }
  // Fully disconnected matrix: everything stays at the identity.
  WeightMatrix empty;
  empty.n = 6;
  empty.w.assign(36, kInf);
  for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
    const MinPlusSquare mp = square(empty, simd);
    for (const double v : mp.best) EXPECT_EQ(v, kInf);
    for (const std::int32_t v : mp.via) EXPECT_EQ(v, kNoRelay);
  }
}

TEST(DenseKernelSimd, TieBreaksToSmallestRelayOnEveryLane) {
  // Row 0 reaches relays 2..10 at unit cost; each relay reaches every
  // column j at a cost drawn from {5, 7} by a fixed pattern, so equal-cost
  // ties occur at every lane position of the 4-wide vectors and across the
  // ragged tail (n = 13).  The strict-< blend must keep the first
  // (smallest-k) winner in every lane; brute force is the oracle.
  const std::size_t n = 13;
  WeightMatrix w;
  w.n = n;
  w.w.assign(n * n, kInf);
  for (std::size_t k = 2; k <= 10; ++k) {
    w.w[0 * n + k] = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == k) continue;
      w.w[k * n + j] = (k * 31 + j * 17) % 3 == 0 ? 5.0 : 7.0;
    }
  }
  const MinPlusSquare scalar = square(w, SimdMode::kScalar);
  const MinPlusSquare simd = square(w, SimdMode::kAvx2);
  expect_bitwise_equal(scalar, simd);
  expect_bitwise_equal(scalar, brute_force(w));
  // Sanity on one fully tied column: every relay k=2..10 reaches j=2 at 7.0
  // except k=2 itself (diagonal); (2*31 + j*17) patterns guarantee at least
  // one all-equal column exists — assert the smallest relay won there.
  for (std::size_t j = 1; j < n; ++j) {
    const std::int32_t k = scalar.via[0 * n + j];
    if (k == kNoRelay) continue;
    const double best = scalar.best[0 * n + j];
    for (std::int32_t earlier = 2; earlier < k; ++earlier) {
      const double cand = w.w[0 * n + static_cast<std::size_t>(earlier)] +
                          w.w[static_cast<std::size_t>(earlier) * n + j];
      EXPECT_GT(cand, best) << "relay " << earlier << " tied or beat the "
                            << "winner " << k << " at column " << j
                            << " but lost the tie-break";
    }
  }
}

// ---------------------------------------------------------------------------
// Memory-estimate guard (the old fixed 8192-host cap is gone).

TEST(DenseKernelSimd, MemoryEstimateCountsAllThreePlanes) {
  // N² cells × (8-byte weight + 8-byte best + 4-byte via).
  EXPECT_EQ(dense_kernel_memory_bytes(1000), 1000u * 1000u * 20u);
  EXPECT_EQ(dense_kernel_memory_bytes(0), 0u);
}

TEST(DenseKernelSimd, AutoAdmitsHostsAboveTheOldCapWithinBudget) {
  AnalyzerOptions o;
  o.max_intermediate_hosts = 1;
  // 10⁴ hosts, densely measured: beyond the old 8192 cap, well inside the
  // default 4 GiB budget (20 × 10⁸ B = 2 GB) and past the cost ratio.
  const std::size_t hosts = 10'000;
  const std::size_t edges = hosts * (hosts - 1) / 4;  // half density
  EXPECT_TRUE(dense_kernel_applicable(hosts, edges, o));
  // A tighter explicit budget rules the same sweep out.
  o.dense_memory_budget_bytes = std::size_t{1} << 30;  // 1 GiB
  EXPECT_FALSE(dense_kernel_applicable(hosts, edges, o));
  // Forcing the kernel overrides the budget — explicit opt-in.
  o.kernel = Kernel::kDense;
  EXPECT_TRUE(dense_kernel_applicable(hosts, edges, o));
}

TEST(DenseKernelSimd, HardHostCeilingHoldsRegardlessOfBudget) {
  AnalyzerOptions o;
  o.max_intermediate_hosts = 1;
  o.dense_memory_budget_bytes = ~std::size_t{0};  // unlimited
  const std::size_t hosts = kDenseMaxHosts + 1;
  EXPECT_FALSE(dense_kernel_applicable(hosts, hosts * 1000, o));
  // Just inside the ceiling the ceiling itself no longer vetoes: with an
  // unlimited budget and overwhelming search cost the kernel is picked.
  EXPECT_TRUE(dense_kernel_applicable(kDenseMaxHosts,
                                      kDenseMaxHosts * 20'000, o));
}

}  // namespace
}  // namespace pathsel::core
