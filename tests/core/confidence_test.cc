#include "core/confidence.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::add_invocations;
using test::make_dataset;

std::vector<PairResult> rtt_results(const PathTable& table) {
  return analyze_alternate_paths(table, AnalyzerOptions{});
}

TEST(Confidence, TallyFractionsSumToOne) {
  auto ds = make_dataset(4);
  add_invocations(ds, 0, 1, 100.0, 10);
  add_invocations(ds, 0, 2, 30.0, 10);
  add_invocations(ds, 2, 1, 30.0, 10);
  add_invocations(ds, 0, 3, 80.0, 10);
  add_invocations(ds, 3, 1, 80.0, 10);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto tally = classify_significance(rtt_results(table));
  EXPECT_GT(tally.pairs, 0u);
  EXPECT_NEAR(tally.better + tally.worse + tally.indeterminate + tally.zero,
              1.0, 1e-12);
}

TEST(Confidence, ClearWinnerClassifiedBetter) {
  // Constant samples -> tiny variance -> decisive verdicts.
  auto ds = make_dataset(3);
  for (int i = 0; i < 20; ++i) {
    add_invocation(ds, 0, 1, {100.0 + (i % 3), 100.0, 100.0});
    add_invocation(ds, 0, 2, {30.0 + (i % 3), 30.0, 30.0});
    add_invocation(ds, 2, 1, {30.0 + (i % 3), 30.0, 30.0});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto results = rtt_results(table);
  for (const auto& r : results) {
    const auto t = stats::welch_ttest(r.default_estimate, r.alternate_estimate);
    if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
      EXPECT_EQ(t.verdict, stats::Significance::kBetter);
    } else {
      EXPECT_EQ(t.verdict, stats::Significance::kWorse);
    }
  }
}

TEST(Confidence, NoisyTieIndeterminate) {
  auto ds = make_dataset(3);
  Rng rng{9};
  for (int i = 0; i < 15; ++i) {
    add_invocation(ds, 0, 1, {60.0 + rng.normal(0, 20), 60.0 + rng.normal(0, 20),
                              60.0 + rng.normal(0, 20)});
    add_invocation(ds, 0, 2, {30.0 + rng.normal(0, 20), 30.0 + rng.normal(0, 20),
                              30.0 + rng.normal(0, 20)});
    add_invocation(ds, 2, 1, {30.0 + rng.normal(0, 20), 30.0 + rng.normal(0, 20),
                              30.0 + rng.normal(0, 20)});
  }
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto tally = classify_significance(rtt_results(table));
  EXPECT_GT(tally.indeterminate, 0.0);
}

TEST(Confidence, LossZeroClass) {
  auto ds = make_dataset(3);
  add_invocations(ds, 0, 1, 10.0, 10);  // no losses anywhere
  add_invocations(ds, 0, 2, 10.0, 10);
  add_invocations(ds, 2, 1, 10.0, 10);
  const auto table = PathTable::build(ds, test::min_samples(1));
  AnalyzerOptions opt;
  opt.metric = Metric::kLoss;
  const auto tally = classify_significance(analyze_alternate_paths(table, opt));
  EXPECT_DOUBLE_EQ(tally.zero, 1.0);
}

TEST(Confidence, CdfSortedWithFractions) {
  auto ds = make_dataset(4);
  add_invocations(ds, 0, 1, 100.0, 8);
  add_invocations(ds, 0, 2, 30.0, 8);
  add_invocations(ds, 2, 1, 30.0, 8);
  add_invocations(ds, 0, 3, 50.0, 8);
  add_invocations(ds, 3, 1, 55.0, 8);
  const auto table = PathTable::build(ds, test::min_samples(1));
  const auto points = confidence_cdf(rtt_results(table));
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].difference, points[i].difference);
    EXPECT_LT(points[i - 1].fraction, points[i].fraction);
  }
  EXPECT_NEAR(points.back().fraction, 1.0, 1e-12);
  for (const auto& p : points) {
    EXPECT_GE(p.half_width, 0.0);
  }
}

TEST(Confidence, EmptyInputHandled) {
  const auto tally = classify_significance(std::span<const PairResult>{});
  EXPECT_EQ(tally.pairs, 0u);
  EXPECT_TRUE(confidence_cdf(std::span<const PairResult>{}).empty());
}

}  // namespace
}  // namespace pathsel::core
