// Thread-count invariance for the sweeps not covered by
// parallel_determinism_test: episodes, time-of-day, and contribution must
// produce bit-identical results at 1, 4 and 8 executors, and the (serial)
// overlay evaluation must be run-to-run deterministic.  All comparisons use
// exact floating-point equality.
#include <gtest/gtest.h>

#include <vector>

#include "core/contribution.h"
#include "core/episodes.h"
#include "core/overlay.h"
#include "core/path_table.h"
#include "core/timeofday.h"
#include "meas/collector.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace pathsel::core {
namespace {

sim::Network make_network() {
  topo::GeneratorConfig gen;
  gen.seed = 48;
  gen.backbone_count = 4;
  gen.regional_count = 8;
  gen.stub_count = 48;
  gen.hosts_per_stub = 1;
  return sim::Network{topo::generate_topology(gen), sim::NetworkConfig{}};
}

std::vector<topo::HostId> mesh_hosts(int n) {
  std::vector<topo::HostId> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(topo::HostId{i});
  return hosts;
}

// Multi-day exponential-pair campaign: feeds time-of-day (weekday/weekend
// bins) and the contribution analyses.
const meas::Dataset& pair_dataset() {
  static const meas::Dataset dataset = [] {
    const sim::Network network = make_network();
    meas::CollectorConfig campaign;
    campaign.seed = 5;
    campaign.duration = Duration::days(3);
    campaign.mean_interval = Duration::seconds(20);
    return meas::collect(network, mesh_hosts(48), campaign,
                         "sweep-invariance-pair");
  }();
  return dataset;
}

// Episode-full-mesh campaign for the simultaneous-measurement analysis.
const meas::Dataset& episode_dataset() {
  static const meas::Dataset dataset = [] {
    const sim::Network network = make_network();
    meas::CollectorConfig campaign;
    campaign.seed = 6;
    campaign.discipline = meas::Discipline::kEpisodeFullMesh;
    campaign.duration = Duration::hours(24);
    campaign.mean_interval = Duration::minutes(45);
    return meas::collect(network, mesh_hosts(24), campaign,
                         "sweep-invariance-episodes");
  }();
  return dataset;
}

void expect_identical_results(const std::vector<PairResult>& serial,
                              const std::vector<PairResult>& threaded) {
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& t = threaded[i];
    EXPECT_EQ(s.a, t.a);
    EXPECT_EQ(s.b, t.b);
    EXPECT_EQ(s.default_value, t.default_value);
    EXPECT_EQ(s.alternate_value, t.alternate_value);
    EXPECT_EQ(s.via, t.via);
    EXPECT_EQ(s.default_estimate.mean, t.default_estimate.mean);
    EXPECT_EQ(s.default_estimate.var_of_mean, t.default_estimate.var_of_mean);
    EXPECT_EQ(s.default_estimate.dof_denom, t.default_estimate.dof_denom);
    EXPECT_EQ(s.alternate_estimate.mean, t.alternate_estimate.mean);
    EXPECT_EQ(s.alternate_estimate.var_of_mean,
              t.alternate_estimate.var_of_mean);
    EXPECT_EQ(s.alternate_estimate.dof_denom, t.alternate_estimate.dof_denom);
  }
}

void expect_identical_cdfs(const stats::EmpiricalCdf& a,
                           const stats::EmpiricalCdf& b) {
  const auto va = a.sorted_values();
  const auto vb = b.sorted_values();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
}

TEST(SweepThreadInvariance, EpisodesMatchSerial) {
  EpisodeOptions serial_opt;
  serial_opt.threads = 1;
  const auto serial = analyze_episodes(episode_dataset(), serial_opt);
  ASSERT_GT(serial.episodes_analyzed, 0u);
  ASSERT_GT(serial.pair_episode_points, 0u);
  for (const int threads : {4, 8}) {
    EpisodeOptions opt;
    opt.threads = threads;
    const auto threaded = analyze_episodes(episode_dataset(), opt);
    EXPECT_EQ(serial.episodes_analyzed, threaded.episodes_analyzed);
    EXPECT_EQ(serial.pair_episode_points, threaded.pair_episode_points);
    expect_identical_cdfs(serial.pair_averaged, threaded.pair_averaged);
    expect_identical_cdfs(serial.unaveraged, threaded.unaveraged);
  }
}

TEST(SweepThreadInvariance, TimeOfDayMatchesSerial) {
  TimeOfDayOptions serial_opt;
  serial_opt.min_samples = 2;
  serial_opt.threads = 1;
  const auto serial = analyze_by_time_of_day(pair_dataset(), serial_opt);
  ASSERT_EQ(serial.size(), 5u);
  std::size_t total_results = 0;
  for (const auto& bin : serial) total_results += bin.results.size();
  ASSERT_GT(total_results, 0u);
  for (const int threads : {4, 8}) {
    TimeOfDayOptions opt = serial_opt;
    opt.threads = threads;
    const auto threaded = analyze_by_time_of_day(pair_dataset(), opt);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t b = 0; b < serial.size(); ++b) {
      EXPECT_EQ(serial[b].label, threaded[b].label);
      expect_identical_results(serial[b].results, threaded[b].results);
    }
  }
}

TEST(SweepThreadInvariance, TopHostRemovalMatchesSerial) {
  BuildOptions build;
  build.min_samples = 2;
  build.threads = 1;
  const PathTable table = PathTable::build(pair_dataset(), build);
  ASSERT_GT(table.edges().size(), 0u);
  const auto serial = remove_top_hosts(table, Metric::kRtt, 5, 1);
  ASSERT_FALSE(serial.removed.empty());
  for (const int threads : {4, 8}) {
    const auto threaded = remove_top_hosts(table, Metric::kRtt, 5, threads);
    EXPECT_EQ(serial.removed, threaded.removed);
    expect_identical_results(serial.full_results, threaded.full_results);
    expect_identical_results(serial.reduced_results, threaded.reduced_results);
  }
}

TEST(SweepThreadInvariance, ContributionsUnaffectedByTableBuildThreads) {
  BuildOptions serial_build;
  serial_build.min_samples = 2;
  serial_build.threads = 1;
  const PathTable serial_table = PathTable::build(pair_dataset(), serial_build);
  const auto serial = improvement_contributions(serial_table, Metric::kRtt);
  ASSERT_FALSE(serial.empty());
  for (const int threads : {4, 8}) {
    BuildOptions build = serial_build;
    build.threads = threads;
    const PathTable table = PathTable::build(pair_dataset(), build);
    const auto threaded = improvement_contributions(table, Metric::kRtt);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].host, threaded[i].host);
      EXPECT_EQ(serial[i].normalized, threaded[i].normalized);
    }
  }
}

TEST(SweepThreadInvariance, OverlayEvaluationIsRunToRunDeterministic) {
  // The overlay probe/route loop is serial by design; lock in that two
  // evaluations from identically constructed meshes agree bit-for-bit.
  const sim::Network network = make_network();
  const SimTime begin = SimTime::start() + Duration::hours(1);
  OverlayConfig config;
  config.probe_interval = Duration::minutes(30);
  auto run = [&] {
    OverlayMesh mesh{network, mesh_hosts(12), config};
    return mesh.evaluate(begin, Duration::hours(6));
  };
  const OverlayReport a = run();
  const OverlayReport b = run();
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.detoured, b.detoured);
  EXPECT_EQ(a.direct_metric.count(), b.direct_metric.count());
  EXPECT_EQ(a.direct_metric.mean(), b.direct_metric.mean());
  EXPECT_EQ(a.overlay_metric.count(), b.overlay_metric.count());
  EXPECT_EQ(a.overlay_metric.mean(), b.overlay_metric.mean());
  ASSERT_GT(a.decisions, 0u);
}

}  // namespace
}  // namespace pathsel::core
