#include "core/timeofday.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pathsel::core {
namespace {

using test::add_invocation;
using test::make_dataset;

// Builds a dataset where the 0-1 path is congested only during the weekday
// 0600-1200 window, and the triangle detour 0-2-1 is always fast.
meas::Dataset tod_dataset() {
  auto ds = make_dataset(3);
  for (int day = 0; day < 7; ++day) {
    for (int hour = 0; hour < 24; hour += 2) {
      const SimTime when =
          SimTime::start() + Duration::days(day) + Duration::hours(hour);
      const bool peak =
          !when.is_weekend() && hour >= 6 && hour < 12;
      const double direct = peak ? 120.0 : 50.0;
      add_invocation(ds, 0, 1, {direct, direct, direct}, when);
      add_invocation(ds, 0, 2, {30.0, 30.0, 30.0}, when);
      add_invocation(ds, 2, 1, {30.0, 30.0, 30.0}, when);
    }
  }
  return ds;
}

TEST(TimeOfDay, ProducesPaperBins) {
  TimeOfDayOptions opt;
  opt.min_samples = 1;
  const auto bins = analyze_by_time_of_day(tod_dataset(), opt);
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0].label, "weekend");
  EXPECT_EQ(bins[1].label, "0000-0600");
  EXPECT_EQ(bins[2].label, "0600-1200");
  EXPECT_EQ(bins[3].label, "1200-1800");
  EXPECT_EQ(bins[4].label, "1800-2400");
}

TEST(TimeOfDay, PeakWindowShowsLargerImprovement) {
  TimeOfDayOptions opt;
  opt.min_samples = 1;
  const auto bins = analyze_by_time_of_day(tod_dataset(), opt);
  auto improvement_for = [](const TimeOfDayBin& bin) {
    for (const auto& r : bin.results) {
      if (r.a == topo::HostId{0} && r.b == topo::HostId{1}) {
        return r.improvement();
      }
    }
    return 0.0;
  };
  const double peak = improvement_for(bins[2]);     // 0600-1200
  const double night = improvement_for(bins[1]);    // 0000-0600
  const double weekend = improvement_for(bins[0]);
  EXPECT_NEAR(peak, 120.0 - 60.0, 1e-9);
  EXPECT_NEAR(night, 50.0 - 60.0, 1e-9);
  EXPECT_NEAR(weekend, 50.0 - 60.0, 1e-9);
  EXPECT_GT(peak, night);
}

TEST(TimeOfDay, BinsPartitionMeasurements) {
  // Count of results cannot exceed the pair count, and every bin analysis
  // uses only its own window (verified indirectly through improvements
  // above); here check all bins produced results.
  TimeOfDayOptions opt;
  opt.min_samples = 1;
  const auto bins = analyze_by_time_of_day(tod_dataset(), opt);
  for (const auto& bin : bins) {
    EXPECT_EQ(bin.results.size(), 3u) << bin.label;
  }
}

TEST(TimeOfDay, MinSamplesDropsSparseBins) {
  auto ds = make_dataset(3);
  // Only two invocations, both on a weekday morning.
  const SimTime when = SimTime::start() + Duration::hours(8);
  add_invocation(ds, 0, 1, {10.0, 10.0, 10.0}, when);
  add_invocation(ds, 0, 2, {10.0, 10.0, 10.0}, when);
  add_invocation(ds, 2, 1, {10.0, 10.0, 10.0}, when);
  TimeOfDayOptions opt;
  opt.min_samples = 1;
  const auto bins = analyze_by_time_of_day(ds, opt);
  EXPECT_TRUE(bins[0].results.empty());   // weekend: nothing measured
  EXPECT_EQ(bins[2].results.size(), 3u);  // 0600-1200 has the data
}

TEST(TimeOfDay, LossMetricSupported) {
  TimeOfDayOptions opt;
  opt.metric = Metric::kLoss;
  opt.min_samples = 1;
  const auto bins = analyze_by_time_of_day(tod_dataset(), opt);
  EXPECT_EQ(bins.size(), 5u);
}

}  // namespace
}  // namespace pathsel::core
