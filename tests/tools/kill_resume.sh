#!/usr/bin/env bash
# Crash-safety acceptance tests for the campaign command, end to end.
#
# The binary honours PATHSEL_TEST_CRASH_AFTER=N by raising SIGKILL right
# after the N-th checkpoint write — no atexit handlers, no flushes — which
# simulates a machine crash at a reproducible instant.  The contract under
# test: a campaign killed mid-collection and resumed with --resume produces
# a dataset byte-identical to an uninterrupted run, at zero and at nonzero
# fault intensity; a torn newest checkpoint generation falls back to the
# previous one; with every generation destroyed the campaign restarts from
# scratch and still converges to the same bytes; and --deadline stops the
# run with exit code 5 after writing a final resumable checkpoint.
set -u

CLI="${1:?usage: kill_resume.sh <path-to-pathsel_cli> [campaign|matrix|all]}"
MODE="${2:-all}"
case "$MODE" in
  all | campaign | matrix) ;;
  *)
    echo "kill_resume.sh: unknown mode '$MODE' (campaign|matrix|all)" >&2
    exit 2
    ;;
esac
TMP="$(mktemp -d)"
failures=0
# Keep the work dir when something failed: the checkpoint generations and
# manifests in it are the post-mortem, and CI uploads them as artifacts.
cleanup() {
  if [[ "$failures" -eq 0 ]]; then
    rm -rf "$TMP"
  else
    echo "preserving checkpoint state in $TMP for post-mortem" >&2
  fi
}
trap cleanup EXIT
fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# Prints the checkpoint generation file holding the latest snapshot (the
# store alternates UW3.ckpt.0 / UW3.ckpt.1; newest = larger now_ms).
newest_gen() {
  local dir="$1" best="" best_ms=-1 f ms
  for f in "$dir"/UW3.ckpt.*; do
    [[ -f "$f" ]] || continue
    ms="$(awk '$1 == "now_ms" { print $2; exit }' "$f")"
    if [[ -n "$ms" && "$ms" -gt "$best_ms" ]]; then
      best="$f"
      best_ms="$ms"
    fi
  done
  printf '%s\n' "$best"
}

truncate_to_half() {
  local f="$1" size
  size="$(stat -c %s "$f")"
  head -c "$((size / 2))" "$f" > "$f.torn" && mv "$f.torn" "$f"
}

# Runs one SIGKILL-at-checkpoint-2 crash into $TMP/<tag>.out with
# checkpoints in $TMP/<tag>.ck, verifying the process died by SIGKILL and
# left no final output.  Extra campaign flags come after the tag.
crash_campaign() {
  local tag="$1"
  shift
  # Reap the crash run inside a brace group with stderr dropped, so bash's
  # own "Killed" job notice stays out of the test log.
  local rc
  {
    PATHSEL_TEST_CRASH_AFTER=2 "$CLI" campaign \
      --out-dir "$TMP/$tag.out" --checkpoint-dir "$TMP/$tag.ck" \
      --datasets UW3 --scale 0.05 "$@" > /dev/null &
    wait $!
    rc=$?
  } 2> /dev/null
  if [[ "$rc" != 137 ]]; then
    fail "$tag: expected death by SIGKILL (exit 137), got $rc"
  fi
  if [[ -e "$TMP/$tag.out/UW3.ds" ]]; then
    fail "$tag: output exists even though the run was killed mid-collection"
  fi
}

# Resumes $TMP/<tag> and compares the output byte-for-byte against $2.
resume_and_compare() {
  local tag="$1" ref="$2" want_resumed="$3"
  shift 3
  "$CLI" campaign --out-dir "$TMP/$tag.out" --checkpoint-dir "$TMP/$tag.ck" \
    --datasets UW3 --scale 0.05 --resume "$@" \
    > "$TMP/$tag.resume.log" 2> "$TMP/$tag.resume.err"
  local rc=$?
  if [[ "$rc" != 0 ]]; then
    fail "$tag: resume exited $rc"
    cat "$TMP/$tag.resume.err" >&2
    return
  fi
  if [[ "$want_resumed" == yes ]] &&
     ! grep -q "resumed from checkpoint" "$TMP/$tag.resume.log"; then
    fail "$tag: resume restarted from scratch instead of using the checkpoint"
  fi
  if [[ "$want_resumed" == no ]] &&
     grep -q "resumed from checkpoint" "$TMP/$tag.resume.log"; then
    fail "$tag: resume claims a checkpoint that should have been discarded"
  fi
  if ! cmp -s "$ref" "$TMP/$tag.out/UW3.ds"; then
    fail "$tag: resumed dataset differs from the uninterrupted run"
  fi
}

if [[ "$MODE" == all || "$MODE" == campaign ]]; then

# --- Uninterrupted references (no checkpointing: the baseline must not ---
# --- depend on the crash-safety machinery at all).                     ---
"$CLI" campaign --out-dir "$TMP/ref0" --datasets UW3 --scale 0.05 \
  > /dev/null 2>&1 || fail "fault-free reference run failed"
"$CLI" campaign --out-dir "$TMP/reff" --datasets UW3 --scale 0.05 \
  --faults 0.3 --fault-seed 7 > /dev/null 2>&1 \
  || fail "faulted reference run failed"

# --- Case 1: SIGKILL mid-collection, resume, byte identity (fault-free) ---
crash_campaign kill0
resume_and_compare kill0 "$TMP/ref0/UW3.ds" yes

# --- Case 2: same, with fault injection active -------------------------
crash_campaign killf --faults 0.3 --fault-seed 7
resume_and_compare killf "$TMP/reff/UW3.ds" yes --faults 0.3 --fault-seed 7

# --- Case 3: torn newest generation falls back to the previous one -----
crash_campaign torn
gen="$(newest_gen "$TMP/torn.ck")"
if [[ -z "$gen" ]]; then
  fail "torn: no checkpoint generation found after the crash"
else
  truncate_to_half "$gen"
  resume_and_compare torn "$TMP/ref0/UW3.ds" yes
  grep -q "discarded checkpoint" "$TMP/torn.resume.err" \
    || fail "torn: no diagnostic for the discarded torn generation"
fi

# --- Case 4: every generation destroyed => clean restart, same bytes ---
crash_campaign wiped
for f in "$TMP/wiped.ck"/UW3.ckpt.*; do
  [[ -f "$f" ]] && printf 'garbage' > "$f"
done
resume_and_compare wiped "$TMP/ref0/UW3.ds" no
grep -q "discarded checkpoint" "$TMP/wiped.resume.err" \
  || fail "wiped: no diagnostic for the discarded generations"

# --- Case 5: --deadline exits 5 with a valid final checkpoint ----------
# A dense checkpoint cadence makes the run arbitrarily slower than the
# 1-second deadline (each write is an fsync'd atomic replace), so the
# deadline reliably fires mid-collection without depending on host speed.
# The escalation loop only tightens cadence if the host outruns the clock.
"$CLI" campaign --out-dir "$TMP/ref3" --datasets UW3 --scale 0.3 \
  > /dev/null 2>&1 || fail "scale-0.3 reference run failed"
rc=0
for hours in 0.25 0.05 0.01; do
  rm -rf "$TMP/dl.out" "$TMP/dl.ck"
  "$CLI" campaign --out-dir "$TMP/dl.out" --checkpoint-dir "$TMP/dl.ck" \
    --datasets UW3 --scale 0.3 --checkpoint-every-hours "$hours" \
    --deadline 1 > /dev/null 2> "$TMP/dl.err"
  rc=$?
  [[ "$rc" == 5 ]] && break
done
if [[ "$rc" != 5 ]]; then
  fail "deadline: expected exit 5, got $rc (host outran every cadence)"
else
  grep -q "interrupted in UW3; checkpoint written" "$TMP/dl.err" \
    || fail "deadline: missing interruption diagnostic"
  [[ -n "$(newest_gen "$TMP/dl.ck")" ]] \
    || fail "deadline: no checkpoint generation on disk after exit 5"
  # The final checkpoint must be loadable and replay to identical bytes.
  "$CLI" campaign --out-dir "$TMP/dl.out" --checkpoint-dir "$TMP/dl.ck" \
    --datasets UW3 --scale 0.3 --resume \
    > "$TMP/dl.resume.log" 2>&1
  rc=$?
  if [[ "$rc" != 0 ]]; then
    fail "deadline: resume after deadline exited $rc"
  else
    grep -q "resumed from checkpoint" "$TMP/dl.resume.log" \
      || fail "deadline: final checkpoint was not resumable"
    cmp -s "$TMP/ref3/UW3.ds" "$TMP/dl.out/UW3.ds" \
      || fail "deadline: resumed dataset differs from the uninterrupted run"
  fi
fi

# --- Case 6: disjoint-mode campaign. A crash/resume must reproduce both ---
# --- the dataset and the derived disjoint report byte-for-byte; resuming ---
# --- under a different k must reject the checkpoint as stale (the k is  ---
# --- folded into the checkpoint fingerprint), restart from scratch, and ---
# --- still converge to the reference bytes.                             ---
"$CLI" campaign --out-dir "$TMP/refdj" --datasets UW3 --scale 0.05 \
  --disjoint 2 > /dev/null 2>&1 || fail "disjoint reference run failed"
[[ -f "$TMP/refdj/UW3.disjoint.tsv" ]] \
  || fail "disjoint reference campaign wrote no UW3.disjoint.tsv"

crash_campaign dj --disjoint 2
resume_and_compare dj "$TMP/refdj/UW3.ds" yes --disjoint 2
cmp -s "$TMP/refdj/UW3.disjoint.tsv" "$TMP/dj.out/UW3.disjoint.tsv" \
  || fail "dj: resumed disjoint report differs from the uninterrupted run"

crash_campaign djk --disjoint 2
resume_and_compare djk "$TMP/ref0/UW3.ds" no --disjoint 3
grep -q "discarded checkpoint" "$TMP/djk.resume.err" \
  || fail "djk: no diagnostic for the stale (different-k) checkpoint"
grep -q "k=3" "$TMP/djk.out/UW3.disjoint.tsv" 2> /dev/null \
  || fail "djk: restarted campaign did not write a k=3 disjoint report"

fi  # campaign mode

if [[ "$MODE" == all || "$MODE" == matrix ]]; then

# --- Matrix cases: the scenario engine's crash contract, end to end. ---
# A worker SIGKILL'd mid-cell takes the whole run to exit 5 (the merge never
# happens on a dead worker), but its flock claim and fingerprint-bound
# checkpoints survive it: a --resume rerun (case M1) or a surviving sibling
# worker in the SAME run (case M2) reclaims the orphaned cell, resumes its
# collection from the checkpoint, and the merged report comes out
# byte-identical to an uninterrupted run's.
cat > "$TMP/grid.txt" <<'EOF_GRID'
name = killtest
scale = 0.05
[faults]
values = 0, 0.15
EOF_GRID

matrix_run() {
  local dir="$1"
  shift
  "$CLI" matrix --grid "$TMP/grid.txt" --work-dir "$dir" --threads 1 "$@"
}

matrix_run "$TMP/mxref" --workers 1 > "$TMP/mxref.report" 2> /dev/null \
  || fail "matrix reference run failed"

# --- Case M1: single worker SIGKILL'd mid-cell; --resume finishes it ---
{
  PATHSEL_TEST_CRASH_AFTER=2 matrix_run "$TMP/mx1" --workers 1 \
    > "$TMP/mx1.report" 2> "$TMP/mx1.err" &
  wait $!
  rc=$?
} 2> /dev/null
if [[ "$rc" != 5 ]]; then
  fail "M1: expected exit 5 after the worker was killed, got $rc"
fi
grep -q "rerun with --resume" "$TMP/mx1.err" \
  || fail "M1: missing resume hint after the worker death"
[[ -e "$TMP/mx1/report.txt" ]] \
  && fail "M1: report exists even though the run was killed mid-cell"
matrix_run "$TMP/mx1" --workers 1 --resume \
  > "$TMP/mx1.resume.report" 2> "$TMP/mx1.resume.err"
rc=$?
if [[ "$rc" != 0 ]]; then
  fail "M1: resume exited $rc"
  cat "$TMP/mx1.resume.err" >&2
else
  grep -q "resumed from checkpoint" "$TMP/mx1.resume.err" \
    || fail "M1: resume restarted the cell instead of using the checkpoint"
  cmp -s "$TMP/mxref.report" "$TMP/mx1.resume.report" \
    || fail "M1: resumed report differs from the uninterrupted run"
  cmp -s "$TMP/mx1.resume.report" "$TMP/mx1/report.txt" \
    || fail "M1: stdout differs from report.txt"
fi

# --- Case M2: two workers, one killed; the survivor reclaims its cell ---
{
  PATHSEL_TEST_CRASH_AFTER=2 PATHSEL_MATRIX_CRASH_WORKER=0 \
    matrix_run "$TMP/mx2" --workers 2 \
    > "$TMP/mx2.report" 2> "$TMP/mx2.err" &
  wait $!
  rc=$?
} 2> /dev/null
if [[ "$rc" != 5 ]]; then
  fail "M2: expected exit 5 after worker 0 was killed, got $rc"
fi
summaries=$(ls "$TMP/mx2/queue"/*.summary 2> /dev/null | wc -l)
if [[ "$summaries" != 2 ]]; then
  fail "M2: survivor left $summaries/2 cell summaries (no reclaim?)"
fi
matrix_run "$TMP/mx2" --workers 2 --resume \
  > "$TMP/mx2.resume.report" 2> "$TMP/mx2.resume.err"
rc=$?
if [[ "$rc" != 0 ]]; then
  fail "M2: resume exited $rc"
  cat "$TMP/mx2.resume.err" >&2
else
  grep -q "(2 reused)" "$TMP/mx2.resume.err" \
    || fail "M2: resume re-ran cells the survivor already finished"
  cmp -s "$TMP/mxref.report" "$TMP/mx2.resume.report" \
    || fail "M2: resumed report differs from the uninterrupted run"
fi

fi  # matrix mode

if [[ "$failures" -ne 0 ]]; then
  echo "$failures kill/resume case(s) failed" >&2
  exit 1
fi
echo "all kill-and-resume cases passed"
