#!/usr/bin/env bash
# End-to-end acceptance for `pathsel_cli serve`: reader-count determinism,
# SIGKILL crash + --resume byte identity, torn-tail repair, and the
# --strict-updates exit contract.
#
# The crash contract: PATHSEL_TEST_CRASH_AFTER=N raises SIGKILL right after
# the N-th journal append — the record is durable, the in-memory apply never
# happened.  A resumed server must answer queries byte-identically to a
# server that cleanly applied exactly those N updates.  (The resumed run
# replays the journal, so its trace carries only the queries; re-submitting
# the updates would double-apply them.)
set -u

CLI="${1:?usage: serve_trace.sh <path-to-pathsel_cli>}"
TMP="$(mktemp -d)"
failures=0
cleanup() {
  if [[ "$failures" -eq 0 ]]; then
    rm -rf "$TMP"
  else
    echo "preserving serve state in $TMP for post-mortem" >&2
  fi
}
trap cleanup EXIT
fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

DS="$TMP/uw3.ds"
"$CLI" generate --dataset UW3 --scale 0.05 --out "$DS" > /dev/null 2>&1 \
  || fail "dataset generation failed"

# Pick the two most-measured pairs from the dataset itself, so the trace
# survives catalog changes (host ids are not contiguous at small scales).
mapfile -t PAIRS < <(grep '^m ' "$DS" | awk '{print $3, $4}' | sort \
  | uniq -c | sort -rn | head -2 | awk '{print $2, $3}')
read -r A1 B1 <<< "${PAIRS[0]}"
read -r A2 B2 <<< "${PAIRS[1]}"
if [[ -z "${A1:-}" || -z "${A2:-}" ]]; then
  fail "could not find two measured pairs in the generated dataset"
  exit 1
fi

SERVE=("$CLI" serve --in "$DS" --min-samples 3)

# --- Case 1: stdout is byte-identical at 1, 4, and 8 reader threads -------
cat > "$TMP/churn.trace" <<EOF
# interleaved updates, barriers, and queries of both kinds
query best rtt $A1 $B1
query best loss $A1 $B1
query disjoint rtt 2 $A1 $B1
update sample $A1 $B1 12.5 0
update sample $A1 $B1 900.0 1
flush
query best rtt $A1 $B1
query best loss $A1 $B1
update sample $A2 $B2 3.25 0
tick 250
flush
query best rtt $A2 $B2
query disjoint loss 2 $A2 $B2
query disjoint rtt 2 $A1 $B1 0
tick 10000
query best rtt $A1 $B1
EOF
for readers in 1 4 8; do
  "${SERVE[@]}" --trace "$TMP/churn.trace" --readers "$readers" \
    > "$TMP/churn.r$readers" 2> /dev/null
  [[ $? -eq 0 ]] || fail "churn trace exited nonzero at $readers readers"
done
for readers in 4 8; do
  cmp -s "$TMP/churn.r1" "$TMP/churn.r$readers" \
    || fail "serve stdout differs between 1 and $readers readers"
done
grep -q "stale=1" "$TMP/churn.r1" \
  || fail "no stale-flagged response after the 10s tick"
grep -q "deadline-exceeded" "$TMP/churn.r1" \
  || fail "zero-budget disjoint query did not report deadline-exceeded"

# --- Case 2: SIGKILL mid-flush, --resume, byte-identical answers ----------
cat > "$TMP/crash.trace" <<EOF
update sample $A1 $B1 12.5 0
update sample $A1 $B1 900.0 1
flush
update sample $A2 $B2 3.25 0
flush
query best rtt $A1 $B1
EOF
cat > "$TMP/queries.trace" <<EOF
query best rtt $A1 $B1
query best loss $A1 $B1
query best rtt $A2 $B2
query disjoint rtt 2 $A1 $B1
EOF
# Reference: a clean server that applied exactly the two updates the crash
# run journaled before dying, then answered the same queries.
cat > "$TMP/ref.trace" <<EOF
update sample $A1 $B1 12.5 0
update sample $A1 $B1 900.0 1
flush
EOF
cat "$TMP/queries.trace" >> "$TMP/ref.trace"
"${SERVE[@]}" --trace "$TMP/ref.trace" --journal-dir "$TMP/ref.jdir" \
  > "$TMP/ref.out" 2> /dev/null || fail "reference serve run failed"

{
  PATHSEL_TEST_CRASH_AFTER=2 "${SERVE[@]}" --trace "$TMP/crash.trace" \
    --journal-dir "$TMP/crash.jdir" > /dev/null 2> /dev/null &
  wait $!
  rc=$?
} 2> /dev/null
[[ "$rc" == 137 ]] || fail "expected death by SIGKILL (exit 137), got $rc"
size="$(stat -c %s "$TMP/crash.jdir/journal.0" 2>/dev/null || echo 0)"
[[ "$size" -gt 36 ]] \
  || fail "journal holds no records after the crash (size $size)"

"${SERVE[@]}" --trace "$TMP/queries.trace" --journal-dir "$TMP/crash.jdir" \
  --resume > "$TMP/resume.out" 2> "$TMP/resume.err"
[[ $? -eq 0 ]] || fail "resume after crash exited nonzero"
grep -q "replayed 2 journaled updates" "$TMP/resume.err" \
  || fail "resume did not replay the two journaled updates"
cmp -s "$TMP/ref.out" "$TMP/resume.out" \
  || fail "resumed answers differ from the clean reference run"

# --- Case 3: a torn journal tail is repaired, replay still converges ------
printf 'torn half-written record' >> "$TMP/crash.jdir/journal.0"
"${SERVE[@]}" --trace "$TMP/queries.trace" --journal-dir "$TMP/crash.jdir" \
  --resume > "$TMP/torn.out" 2> "$TMP/torn.err"
[[ $? -eq 0 ]] || fail "resume with a torn tail exited nonzero"
grep -q "truncated torn tail" "$TMP/torn.err" \
  || fail "no diagnostic for the torn journal tail"
cmp -s "$TMP/ref.out" "$TMP/torn.out" \
  || fail "torn-tail resume answers differ from the clean reference run"

# --- Case 4: rejected updates degrade gracefully; --strict-updates gates --
cat > "$TMP/bad.trace" <<EOF
update sample 999999 $B1 5.0 0
query best rtt $A1 $B1
EOF
"${SERVE[@]}" --trace "$TMP/bad.trace" > "$TMP/bad.out" 2> "$TMP/bad.err"
[[ $? -eq 0 ]] || fail "rejected update must not fail a lenient run"
grep -q "update rejected" "$TMP/bad.err" \
  || fail "no per-line rejection diagnostic on stderr"
grep -q "^best rtt" "$TMP/bad.out" \
  || fail "queries after a rejected update were not served"
"${SERVE[@]}" --trace "$TMP/bad.trace" --strict-updates \
  > /dev/null 2> /dev/null
[[ $? -eq 1 ]] || fail "--strict-updates did not exit 1 on a rejected update"

if [[ "$failures" -ne 0 ]]; then
  echo "$failures serve trace case(s) failed" >&2
  exit 1
fi
echo "all serve trace cases passed"
