#!/usr/bin/env bash
# Exit-code contract for pathsel_cli: 0 ok, 1 data error, 2 usage,
# 3 unreadable input, 4 parse error, 5 interrupted (deadline/signal).
# Every failure must also print a one-line diagnostic on stderr.
set -u

CLI="${1:?usage: cli_errors.sh <path-to-pathsel_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

failures=0

# expect <code> <description> -- <argv...>
expect() {
  local want="$1" desc="$2"
  shift 3
  local err rc
  err="$("$CLI" "$@" 2>&1 >/dev/null)"
  rc=$?
  if [[ "$rc" != "$want" ]]; then
    echo "FAIL: $desc: expected exit $want, got $rc (args: $*)" >&2
    failures=$((failures + 1))
  elif [[ "$want" != 0 && -z "$err" ]]; then
    echo "FAIL: $desc: exit $rc but no diagnostic on stderr" >&2
    failures=$((failures + 1))
  fi
}

expect 2 "no arguments" --
expect 2 "unknown command" -- frobnicate

# --version contract: prints the CLI version plus every stable on-disk /
# on-wire format version, exits 0, and rejects extra arguments.
expect 0 "--version" -- --version
expect 0 "version subcommand" -- version
expect 2 "version with extra arguments" -- version extra
"$CLI" --version > "$TMP/version.out" 2>/dev/null
for needle in "pathsel_cli" "pathsel-dataset v1" "pathsel-checkpoint v1" \
              "PSRC v1" "PSJL v1" "PSSV v1" "pathsel-grid v1" \
              "pathsel-matrix-cell v1" "schema_version 1"; do
  if ! grep -q "$needle" "$TMP/version.out"; then
    echo "FAIL: --version output missing '$needle'" >&2
    failures=$((failures + 1))
  fi
done
expect 2 "unknown flag" -- info --bogus x
expect 2 "missing --in" -- info
expect 2 "flag without value" -- analyze --in
expect 3 "nonexistent input file" -- info --in "$TMP/no-such-file"

printf 'this is not a dataset\n' > "$TMP/garbage"
expect 4 "garbage input file" -- info --in "$TMP/garbage"

printf 'pathsel-dataset v1\nname x\nkind traceroute\nduration_ms -1\n' \
  > "$TMP/badheader"
expect 4 "malformed header" -- analyze --in "$TMP/badheader"

expect 2 "unknown dataset name" -- generate --dataset NOPE --out "$TMP/x"
expect 2 "non-numeric seed" -- generate --dataset UW3 --seed banana --out "$TMP/x"
expect 2 "scale out of range" -- generate --dataset UW3 --scale 0 --out "$TMP/x"
expect 2 "fault intensity out of range" -- \
  generate --dataset UW3 --faults 1.5 --out "$TMP/x"
expect 2 "bad metric" -- analyze --in "$TMP/garbage" --metric vibes
expect 2 "threads out of range" -- \
  analyze --in "$TMP/garbage" --threads 99999

# Happy paths: generate once, then exercise info/analyze on the result.
expect 0 "generate" -- \
  generate --dataset UW3 --scale 0.01 --out "$TMP/uw3.ds"
expect 0 "info" -- info --in "$TMP/uw3.ds"
expect 0 "analyze rtt" -- \
  analyze --in "$TMP/uw3.ds" --metric rtt --min-samples 2
expect 1 "bandwidth on a traceroute dataset" -- \
  analyze --in "$TMP/uw3.ds" --metric bandwidth
expect 0 "generate with faults" -- \
  generate --dataset UW3 --scale 0.01 --faults 0.2 --fault-seed 7 \
  --out "$TMP/faulted.ds"
expect 0 "analyze faulted with coverage" -- \
  analyze --in "$TMP/faulted.ds" --metric rtt --min-samples 2 --coverage

# Campaign / checkpoint / deadline flag contract.  An already-expired
# deadline is an interruption (exit 5), not a usage error: the flags were
# valid, the clock simply ran out before any work could happen.
expect 2 "campaign missing --out-dir" -- campaign --datasets UW3
expect 2 "campaign unknown dataset" -- \
  campaign --out-dir "$TMP/camp" --datasets NOPE
expect 2 "campaign empty dataset list" -- \
  campaign --out-dir "$TMP/camp" --datasets ,
expect 2 "resume without checkpoint dir" -- \
  campaign --out-dir "$TMP/camp" --resume
expect 2 "non-numeric deadline" -- \
  campaign --out-dir "$TMP/camp" --deadline banana
expect 2 "negative deadline" -- \
  campaign --out-dir "$TMP/camp" --deadline -1
expect 2 "checkpoint cadence of zero" -- \
  campaign --out-dir "$TMP/camp" --checkpoint-every-hours 0
expect 5 "campaign with expired deadline" -- \
  campaign --out-dir "$TMP/camp" --datasets UW3 --scale 0.01 --deadline 0
expect 5 "analyze with expired deadline" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --deadline 0
expect 0 "small campaign round trip" -- \
  campaign --out-dir "$TMP/camp" --checkpoint-dir "$TMP/camp.ck" \
  --datasets UW3 --scale 0.01
if [[ ! -f "$TMP/camp/UW3.ds" ]]; then
  echo "FAIL: campaign did not write its dataset" >&2
  failures=$((failures + 1))
fi

# --kernel contract: engine selection is validated before any I/O, the dense
# kernel only exists for one-hop sweeps, and — the load-bearing promise —
# forcing either engine leaves stdout byte-identical.
expect 2 "bad kernel value" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --kernel turbo
expect 2 "dense kernel without --one-hop" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --kernel dense
expect 2 "kernel with bandwidth metric" -- \
  analyze --in "$TMP/uw3.ds" --metric bandwidth --one-hop --kernel dense
expect 0 "one-hop analyze, dense kernel" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --kernel dense
expect 0 "one-hop analyze, search kernel" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --kernel search

for metric in rtt loss; do
  for fmt in "" "--csv"; do
    "$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --metric "$metric" \
      --one-hop --kernel dense $fmt > "$TMP/dense.out" 2>/dev/null
    "$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --metric "$metric" \
      --one-hop --kernel search $fmt > "$TMP/search.out" 2>/dev/null
    if ! cmp -s "$TMP/dense.out" "$TMP/search.out"; then
      echo "FAIL: --kernel dense vs search stdout differs ($metric $fmt)" >&2
      failures=$((failures + 1))
    fi
  done
done

# --simd contract: value validated as a usage error before I/O, and the
# instruction path never changes the answer — scalar and avx2 stdout must
# be byte-identical (on hardware without AVX2 this compares scalar against
# its own fallback, which still locks the flag plumbing).
expect 2 "bad simd value" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --simd sse9
expect 2 "simd with bandwidth metric" -- \
  analyze --in "$TMP/uw3.ds" --metric bandwidth --one-hop --simd avx2
for simd in auto avx2 scalar; do
  expect 0 "one-hop analyze, simd $simd" -- \
    analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --kernel dense \
    --simd "$simd"
done
"$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --kernel dense \
  --simd scalar > "$TMP/simd_scalar.out" 2>/dev/null
"$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --one-hop --kernel dense \
  --simd avx2 > "$TMP/simd_avx2.out" 2>/dev/null
if ! cmp -s "$TMP/simd_scalar.out" "$TMP/simd_avx2.out"; then
  echo "FAIL: --simd scalar vs avx2 stdout differs" >&2
  failures=$((failures + 1))
fi

# --disjoint contract: k is validated as a usage error before any I/O, the
# mode is an analyzer of its own (exclusive with the one-hop/kernel/simd
# sweep and the bandwidth metric), and a k the measured graph cannot honour
# (k > N-2) is a data error (exit 1), not a usage error — the flags were
# fine, the data was too small.  Output must be byte-identical across
# thread counts.
expect 2 "non-numeric disjoint k" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint banana
expect 2 "zero disjoint k" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 0
expect 2 "negative disjoint k" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint -2
expect 2 "disjoint-mode without --disjoint" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint-mode node
expect 2 "bad disjoint mode" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --disjoint-mode mesh
expect 2 "disjoint with --one-hop" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --one-hop
expect 2 "disjoint with --kernel" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --kernel dense
expect 2 "disjoint with --simd" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --simd scalar
expect 2 "disjoint with bandwidth metric" -- \
  analyze --in "$TMP/uw3.ds" --metric bandwidth --disjoint 2
expect 1 "disjoint k beyond the graph ceiling" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 999
expect 0 "disjoint link mode" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2
expect 0 "disjoint node mode" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --disjoint-mode node
expect 0 "disjoint csv" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --csv
expect 2 "campaign non-numeric disjoint k" -- \
  campaign --out-dir "$TMP/camp" --disjoint banana

for threads in 1 4 8; do
  "$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 \
    --threads "$threads" > "$TMP/disjoint.t$threads" 2>/dev/null
done
for threads in 4 8; do
  if ! cmp -s "$TMP/disjoint.t1" "$TMP/disjoint.t$threads"; then
    echo "FAIL: --disjoint stdout differs between 1 and $threads threads" >&2
    failures=$((failures + 1))
  fi
done

# --results-out / --results-in contract: both bound the run to one side of
# the sweep, so combining them with flags from the other side is a usage
# error validated before any I/O (the input path below does not exist, yet
# the exit code must still be 2).  Reading a missing results file is exit 3,
# a corrupted one exit 4, and a split run's concatenated stdout must be
# byte-identical to the fused run at every thread count.
expect 2 "results-out with results-in" -- \
  analyze --in "$TMP/no-such-file" --results-out "$TMP/r.psrc" \
  --results-in "$TMP/r.psrc"
expect 2 "results-out with --csv" -- \
  analyze --in "$TMP/no-such-file" --results-out "$TMP/r.psrc" --csv
expect 2 "results-out with --coverage" -- \
  analyze --in "$TMP/no-such-file" --results-out "$TMP/r.psrc" --coverage
expect 2 "results-out with --disjoint" -- \
  analyze --in "$TMP/no-such-file" --results-out "$TMP/r.psrc" --disjoint 2
expect 2 "results-out with bandwidth metric" -- \
  analyze --in "$TMP/no-such-file" --metric bandwidth \
  --results-out "$TMP/r.psrc"
expect 2 "results-in with --in" -- \
  analyze --in "$TMP/no-such-file" --results-in "$TMP/no-such-file"
expect 2 "results-in with --metric" -- \
  analyze --results-in "$TMP/no-such-file" --metric rtt
expect 2 "results-in with --min-samples" -- \
  analyze --results-in "$TMP/no-such-file" --min-samples 2
expect 2 "results-in with --one-hop" -- \
  analyze --results-in "$TMP/no-such-file" --one-hop
expect 2 "results-in with --kernel" -- \
  analyze --results-in "$TMP/no-such-file" --kernel dense
expect 2 "results-in with --simd" -- \
  analyze --results-in "$TMP/no-such-file" --simd scalar
expect 2 "results-in with --coverage" -- \
  analyze --results-in "$TMP/no-such-file" --coverage
expect 2 "results-in with --disjoint" -- \
  analyze --results-in "$TMP/no-such-file" --disjoint 2
expect 3 "results-in missing file" -- \
  analyze --results-in "$TMP/no-such-file"
printf 'not a results file\n' > "$TMP/bad.psrc"
expect 4 "results-in malformed file" -- analyze --results-in "$TMP/bad.psrc"
expect 0 "analyze with results-out" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --results-out "$TMP/r.psrc"
expect 0 "analyze with results-in" -- analyze --results-in "$TMP/r.psrc"
# A truncated results file must be a parse error, not a crash.
head -c 40 "$TMP/r.psrc" > "$TMP/trunc.psrc"
expect 4 "results-in truncated file" -- analyze --results-in "$TMP/trunc.psrc"

for threads in 1 4 8; do
  "$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --threads "$threads" \
    > "$TMP/fused.t$threads" 2>/dev/null
  "$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --threads "$threads" \
    --results-out "$TMP/split.t$threads.psrc" \
    > "$TMP/split_head.t$threads" 2>/dev/null
  "$CLI" analyze --results-in "$TMP/split.t$threads.psrc" \
    --threads "$threads" > "$TMP/split_tail.t$threads" 2>/dev/null
  cat "$TMP/split_head.t$threads" "$TMP/split_tail.t$threads" \
    > "$TMP/split.t$threads"
  if ! cmp -s "$TMP/fused.t$threads" "$TMP/split.t$threads"; then
    echo "FAIL: split-run stdout differs from fused at $threads threads" >&2
    failures=$((failures + 1))
  fi
done
for threads in 4 8; do
  if ! cmp -s "$TMP/split.t1.psrc" "$TMP/split.t$threads.psrc"; then
    echo "FAIL: results file differs between 1 and $threads threads" >&2
    failures=$((failures + 1))
  fi
done

# serve contract: flag validation is a usage error before any I/O; missing
# inputs are exit 3.  (Crash/replay and determinism live in serve_trace.sh.)
expect 2 "serve missing --trace" -- serve --in "$TMP/uw3.ds"
expect 2 "serve readers out of range" -- \
  serve --in "$TMP/uw3.ds" --trace - --readers 0
expect 2 "serve non-numeric queue capacity" -- \
  serve --in "$TMP/uw3.ds" --trace - --queue-cap banana
expect 2 "serve resume without journal dir" -- \
  serve --in "$TMP/uw3.ds" --trace - --resume
expect 3 "serve missing input" -- \
  serve --in "$TMP/no-such-file" --trace -
expect 3 "serve unreadable trace file" -- \
  serve --in "$TMP/uw3.ds" --min-samples 3 --trace "$TMP/no-such-trace"
expect 4 "serve garbage input" -- serve --in "$TMP/garbage" --trace -
printf 'query best rtt 0 1\n' > "$TMP/one_query.trace"
expect 0 "serve minimal trace" -- \
  serve --in "$TMP/uw3.ds" --min-samples 3 --trace "$TMP/one_query.trace"
expect 5 "serve with expired deadline" -- \
  serve --in "$TMP/uw3.ds" --min-samples 3 --trace "$TMP/one_query.trace" \
  --deadline 0

# matrix contract: flag and grid validation are usage errors (exit 2)
# raised before the work dir is created — a malformed grid must reject with
# a diagnostic naming the grid file and leave no droppings on disk.  An
# unreadable grid file is exit 3 (the flags were fine, the file was not).
expect 2 "matrix missing --grid" -- matrix --work-dir "$TMP/mx"
expect 2 "matrix missing --work-dir" -- matrix --grid "$TMP/no-grid"
expect 2 "matrix flag without value" -- \
  matrix --grid "$TMP/no-grid" --work-dir
expect 2 "matrix non-numeric workers" -- \
  matrix --grid "$TMP/no-grid" --work-dir "$TMP/mx" --workers banana
expect 2 "matrix negative workers" -- \
  matrix --grid "$TMP/no-grid" --work-dir "$TMP/mx" --workers -1
expect 2 "matrix workers beyond the cap" -- \
  matrix --grid "$TMP/no-grid" --work-dir "$TMP/mx" --workers 257
expect 2 "matrix threads out of range" -- \
  matrix --grid "$TMP/no-grid" --work-dir "$TMP/mx" --threads 0
expect 3 "matrix unreadable grid" -- \
  matrix --grid "$TMP/no-grid" --work-dir "$TMP/mx"
if [[ -e "$TMP/mx" ]]; then
  echo "FAIL: matrix created its work dir despite an unreadable grid" >&2
  failures=$((failures + 1))
fi

for bad in "scale = banana" "unknownkey = 1" "[faults]
values = 2" "[policies]
values = disjoint:0" "[seeds]
values = 1, 1"; do
  printf '%s\n' "$bad" > "$TMP/bad_grid.txt"
  expect 2 "matrix malformed grid ($bad)" -- \
    matrix --grid "$TMP/bad_grid.txt" --work-dir "$TMP/mx"
  if [[ -e "$TMP/mx" ]]; then
    echo "FAIL: malformed grid reached the work dir ($bad)" >&2
    failures=$((failures + 1))
  fi
done
# The diagnostic names the offending grid file.
"$CLI" matrix --grid "$TMP/bad_grid.txt" --work-dir "$TMP/mx" \
  2> "$TMP/mx.err" > /dev/null
if ! grep -q "bad_grid.txt" "$TMP/mx.err"; then
  echo "FAIL: matrix grid diagnostic does not name the grid file" >&2
  failures=$((failures + 1))
fi

printf 'name = smoke\nscale = 0.01\n' > "$TMP/smoke_grid.txt"
expect 0 "matrix single-cell smoke run" -- \
  matrix --grid "$TMP/smoke_grid.txt" --work-dir "$TMP/mx" --workers 0
if [[ ! -f "$TMP/mx/report.txt" ]]; then
  echo "FAIL: matrix smoke run did not write report.txt" >&2
  failures=$((failures + 1))
fi
expect 2 "matrix resume across an edited grid scale" -- \
  matrix --grid "$TMP/bad_grid.txt" --work-dir "$TMP/mx" --resume
expect 5 "matrix with expired deadline" -- \
  matrix --grid "$TMP/smoke_grid.txt" --work-dir "$TMP/mx2" --deadline 0

# --metrics contract: bad format is a usage error; valid formats succeed and
# the dump goes to stderr only, leaving stdout byte-identical to a
# metrics-off run (observability must never change analysis output).
expect 2 "bad metrics format" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --metrics=bogus
expect 0 "metrics table format" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --metrics
expect 0 "metrics json format" -- \
  analyze --in "$TMP/uw3.ds" --min-samples 2 --metrics=json

"$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 \
  > "$TMP/plain.out" 2>/dev/null
"$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --metrics \
  > "$TMP/metrics.out" 2> "$TMP/metrics.err"
if ! cmp -s "$TMP/plain.out" "$TMP/metrics.out"; then
  echo "FAIL: --metrics changed stdout" >&2
  failures=$((failures + 1))
fi
if ! grep -q "core.path_table.builds" "$TMP/metrics.err"; then
  echo "FAIL: --metrics dump missing from stderr" >&2
  failures=$((failures + 1))
fi

if [[ "$failures" -ne 0 ]]; then
  echo "$failures case(s) failed" >&2
  exit 1
fi
echo "all CLI error-path cases passed"
