#!/usr/bin/env bash
# --json robustness for the bench harness: an unwritable report path must
# fail fast at startup (before any measurement work runs) with a clear
# diagnostic and a nonzero exit, and must not clobber a pre-existing report;
# a writable path must still produce a report.
set -u

BENCH="${1:?usage: bench_json_errors.sh <bench-binary>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

export PATHSEL_BENCH_SCALE=0.05
export PATHSEL_THREADS=1

failures=0
fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# Unwritable directory component: must fail immediately.
start=$SECONDS
"$BENCH" --json "$TMP/no-such-dir/report.json" \
  > /dev/null 2> "$TMP/err" </dev/null
rc=$?
if [[ "$rc" == 0 ]]; then
  fail "unwritable --json path exited 0"
fi
grep -q "cannot open" "$TMP/err" \
  || fail "no 'cannot open' diagnostic on stderr (got: $(cat "$TMP/err"))"
if [[ "$((SECONDS - start))" -gt 5 ]]; then
  fail "probe did not fail fast (took $((SECONDS - start))s)"
fi

# A path that opens but cannot be written (/dev/full reports ENOSPC on
# flush) passes the startup probe yet must still surface a short-write
# diagnostic and a nonzero exit from the final report write.
if [[ -w /dev/full ]]; then
  "$BENCH" --json /dev/full > /dev/null 2> "$TMP/full.err" </dev/null
  rc=$?
  if [[ "$rc" == 0 ]]; then
    fail "--json /dev/full exited 0 despite the failed report write"
  fi
  grep -q "short write" "$TMP/full.err" \
    || fail "no short-write diagnostic (got: $(cat "$TMP/full.err"))"
fi

# Happy path: a writable target yields a report.
"$BENCH" --json "$TMP/ok.json" > /dev/null 2>&1 </dev/null \
  || fail "writable --json path exited nonzero"
grep -q '"metrics":' "$TMP/ok.json" \
  || fail "report at writable path is missing the metrics object"

if [[ "$failures" -ne 0 ]]; then
  echo "$failures bench --json case(s) failed" >&2
  exit 1
fi
echo "all bench --json error-path cases passed"
