#!/usr/bin/env bash
# Golden-file regression for pathsel_cli's analysis pipeline.
#
# The snapshots in tests/golden/cli were captured BEFORE the columnar
# results refactor, so this harness is the equivalence proof the refactor
# rides on: the ported figure/confidence/coverage/campaign pipeline must
# reproduce each of them byte for byte.  On top of the fused-output checks
# it locks the split-run contract: `analyze --results-out` followed by
# `analyze --results-in` must produce stdout that concatenates to exactly
# the fused run's bytes, and the intermediate results file must survive a
# read-rewrite cycle unchanged (serialize -> parse -> serialize
# byte-stability, end to end through the CLI).
#
# Regenerate snapshots after an intentional output change with:
#   PATHSEL_UPDATE_GOLDEN=1 ctest -R tools_cli_golden
set -u

GOLDEN_ROOT="${1:?usage: golden_cli.sh <golden-root> <path-to-pathsel_cli>}"
GOLDEN_DIR="$GOLDEN_ROOT/cli"
CLI="${2:?usage: golden_cli.sh <golden-root> <path-to-pathsel_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# One thread keeps the configuration minimal; the sweeps are thread-count
# invariant, which the cli_errors harness checks separately.
export PATHSEL_THREADS=1

failures=0

check() {
  local name="$1" actual="$2"
  local golden="$GOLDEN_DIR/$name.golden"
  if [[ "${PATHSEL_UPDATE_GOLDEN:-0}" != 0 ]]; then
    mkdir -p "$GOLDEN_DIR"
    cp "$actual" "$golden"
    echo "updated $golden"
    return
  fi
  if [[ ! -f "$golden" ]]; then
    echo "FAIL: missing golden file $golden" >&2
    echo "      (run with PATHSEL_UPDATE_GOLDEN=1 to create it)" >&2
    failures=$((failures + 1))
    return
  fi
  if ! cmp -s "$golden" "$actual"; then
    echo "FAIL: $name drifted from its golden:" >&2
    diff -u "$golden" "$actual" >&2 || true
    echo "      (PATHSEL_UPDATE_GOLDEN=1 regenerates if intentional)" >&2
    failures=$((failures + 1))
  fi
}

# Fixed dataset: UW3 at scale 0.05, default seed — the same bytes the
# goldens were captured from.
if ! "$CLI" generate --dataset UW3 --scale 0.05 --out "$TMP/uw3.ds" \
    > /dev/null 2> "$TMP/gen.err"; then
  echo "FAIL: generate exited nonzero:" >&2
  cat "$TMP/gen.err" >&2
  exit 1
fi

"$CLI" analyze --in "$TMP/uw3.ds" --metric rtt --min-samples 2 \
  > "$TMP/analyze_rtt.out" 2>/dev/null
check analyze_rtt "$TMP/analyze_rtt.out"

"$CLI" analyze --in "$TMP/uw3.ds" --metric rtt --min-samples 2 --csv \
  > "$TMP/analyze_rtt_csv.out" 2>/dev/null
check analyze_rtt_csv "$TMP/analyze_rtt_csv.out"

"$CLI" analyze --in "$TMP/uw3.ds" --metric loss --min-samples 2 \
  > "$TMP/analyze_loss.out" 2>/dev/null
check analyze_loss "$TMP/analyze_loss.out"

"$CLI" analyze --in "$TMP/uw3.ds" --metric rtt --min-samples 2 --coverage \
  > "$TMP/analyze_rtt_coverage.out" 2>/dev/null
check analyze_rtt_coverage "$TMP/analyze_rtt_coverage.out"

"$CLI" analyze --in "$TMP/uw3.ds" --min-samples 2 --disjoint 2 --csv \
  > "$TMP/analyze_disjoint_csv.out" 2>/dev/null
check analyze_disjoint_csv "$TMP/analyze_disjoint_csv.out"

# Campaign disjoint TSV (regenerates UW3 internally at the same seed).
if ! "$CLI" campaign --out-dir "$TMP/camp" --datasets UW3 --scale 0.05 \
    --disjoint 2 > /dev/null 2> "$TMP/camp.err"; then
  echo "FAIL: campaign exited nonzero:" >&2
  cat "$TMP/camp.err" >&2
  failures=$((failures + 1))
else
  check campaign_disjoint_tsv "$TMP/camp/UW3.disjoint.tsv"
fi

# Split-run contract against the same goldens: --results-out stdout followed
# by --results-in stdout must equal the fused run's bytes exactly.
"$CLI" analyze --in "$TMP/uw3.ds" --metric rtt --min-samples 2 \
  --results-out "$TMP/cols.psrc" > "$TMP/split_head.out" 2>/dev/null
"$CLI" analyze --results-in "$TMP/cols.psrc" \
  > "$TMP/split_tail.out" 2>/dev/null
cat "$TMP/split_head.out" "$TMP/split_tail.out" > "$TMP/split_rtt.out"
check analyze_rtt "$TMP/split_rtt.out"

"$CLI" analyze --results-in "$TMP/cols.psrc" --csv \
  > "$TMP/split_tail_csv.out" 2>/dev/null
cat "$TMP/split_head.out" "$TMP/split_tail_csv.out" > "$TMP/split_rtt_csv.out"
check analyze_rtt_csv "$TMP/split_rtt_csv.out"

# The intermediate file is byte-stable: a second --results-out run over the
# same dataset must reproduce it exactly (deterministic serialization).
"$CLI" analyze --in "$TMP/uw3.ds" --metric rtt --min-samples 2 \
  --results-out "$TMP/cols2.psrc" > /dev/null 2>&1
if ! cmp -s "$TMP/cols.psrc" "$TMP/cols2.psrc"; then
  echo "FAIL: --results-out is not deterministic between runs" >&2
  failures=$((failures + 1))
fi

# --- Matrix goldens: a 2x2x2 grid (fault x metric x policy) merged with ---
# --- the sequential engine.  The golden pins the full report surface:    ---
# --- per-cell table, per-axis marginals, and the extremes block.         ---
GOLDEN_DIR="$GOLDEN_ROOT/matrix"

cat > "$TMP/grid.txt" <<'EOF_GRID'
name = golden
scale = 0.05
[faults]
values = 0, 0.15
[metrics]
values = rtt, loss
[policies]
values = one-hop, disjoint:2
EOF_GRID

"$CLI" matrix --grid "$TMP/grid.txt" --work-dir "$TMP/mx" --workers 0 \
  --threads 1 > "$TMP/matrix_report.out" 2> "$TMP/mx.err"
rc=$?
if [[ "$rc" != 0 ]]; then
  echo "FAIL: matrix run exited $rc:" >&2
  cat "$TMP/mx.err" >&2
  failures=$((failures + 1))
else
  check matrix_report "$TMP/matrix_report.out"
  # stdout and the work dir's report.txt are the same bytes by contract.
  if ! cmp -s "$TMP/matrix_report.out" "$TMP/mx/report.txt"; then
    echo "FAIL: matrix stdout differs from report.txt" >&2
    failures=$((failures + 1))
  fi
  # A --resume rerun over the finished work dir is a pure merge: every cell
  # reused, and the report reproduced byte for byte.
  "$CLI" matrix --grid "$TMP/grid.txt" --work-dir "$TMP/mx" --workers 0 \
    --threads 1 --resume > "$TMP/matrix_resume.out" 2> "$TMP/mx2.err"
  if [[ $? != 0 ]]; then
    echo "FAIL: matrix --resume rerun exited nonzero" >&2
    failures=$((failures + 1))
  else
    grep -q "(8 reused)" "$TMP/mx2.err" \
      || { echo "FAIL: resume rerun re-ran cells instead of reusing" >&2
           failures=$((failures + 1)); }
    check matrix_report "$TMP/matrix_resume.out"
  fi
fi

if [[ "$failures" -ne 0 ]]; then
  echo "$failures golden check(s) failed" >&2
  exit 1
fi
echo "all CLI golden outputs match"
