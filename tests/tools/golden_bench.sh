#!/usr/bin/env bash
# Golden-file regression harness for the bench --json output.
#
# Each bench binary is run at a fixed scale and thread count and its JSON
# report is compared line-for-line against a checked-in golden snapshot.
# Timing is the only nondeterministic content, and the schema puts all of it
# in the trailing "metrics" object, so normalization simply truncates the
# document at the "metrics" key; everything above it — every CDF point,
# table cell and note — must match exactly, so any numeric drift in the
# analysis pipeline fails the test.
#
# Regenerate snapshots after an intentional change with:
#   PATHSEL_UPDATE_GOLDEN=1 ctest -R bench_golden
set -u

GOLDEN_DIR="${1:?usage: golden_bench.sh <golden-dir> <bench-binary>...}"
shift

# Fixed, reproducible configuration: small scale for speed, one thread so
# the result does not depend on the host's core count (the sweeps are
# thread-count invariant anyway; this keeps the baseline minimal).
export PATHSEL_BENCH_SCALE=0.2
export PATHSEL_THREADS=1
unset PATHSEL_METRICS

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Everything strictly above the line holding the top-level "metrics" key is
# the deterministic payload.
normalize() {
  sed -n '/^  "metrics":/q;p' "$1"
}

failures=0
for bin in "$@"; do
  name="$(basename "$bin")"
  json="$TMP/$name.json"
  golden="$GOLDEN_DIR/$name.json.golden"
  if ! "$bin" --json "$json" > /dev/null 2> "$TMP/$name.err"; then
    echo "FAIL: $name exited nonzero:" >&2
    cat "$TMP/$name.err" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! grep -q '^  "metrics":' "$json"; then
    echo "FAIL: $name: no top-level \"metrics\" key to truncate at" >&2
    failures=$((failures + 1))
    continue
  fi
  normalize "$json" > "$TMP/$name.norm"
  if [[ "${PATHSEL_UPDATE_GOLDEN:-0}" != 0 ]]; then
    cp "$TMP/$name.norm" "$golden"
    echo "updated $golden"
    continue
  fi
  if [[ ! -f "$golden" ]]; then
    echo "FAIL: $name: missing golden file $golden" >&2
    echo "      (run with PATHSEL_UPDATE_GOLDEN=1 to create it)" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! diff -u "$golden" "$TMP/$name.norm" >&2; then
    echo "FAIL: $name: output drifted from $golden" >&2
    echo "      (PATHSEL_UPDATE_GOLDEN=1 regenerates if intentional)" >&2
    failures=$((failures + 1))
  fi
done

if [[ "$failures" -ne 0 ]]; then
  echo "$failures golden check(s) failed" >&2
  exit 1
fi
echo "all golden bench outputs match"
