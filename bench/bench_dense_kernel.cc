// Dense min-plus kernel vs. per-pair reference search.
//
// Sweeps the one-hop alternate-path analysis over seeded random meshes of
// N ∈ {64, 128, 256, 512} hosts at edge densities 0.5 and 1.0, timing the
// cache-blocked O(N³) min-plus kernel against the per-pair Bellman-Ford
// reference (O(E) per pair, ~O(N⁴) on dense meshes), and re-checking that
// both engines return bit-identical PairResult vectors — a speedup must
// never come from a different answer.  PATHSEL_BENCH_SCALE < 1 trims the
// upper end of the N sweep for quick CI runs.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "core/alternate.h"
#include "core/dense_kernel.h"
#include "core/path_table.h"
#include "meas/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace pathsel;

// A random mesh of `host_count` hosts where each pair is measured with
// probability `density`; RTT levels from a seeded Rng, light random loss.
meas::Dataset make_mesh(int host_count, double density, std::uint64_t seed) {
  meas::Dataset ds;
  ds.name = "dense-kernel-mesh";
  ds.kind = meas::MeasurementKind::kTraceroute;
  ds.duration = Duration::days(1);
  for (int i = 0; i < host_count; ++i) ds.hosts.push_back(topo::HostId{i});
  Rng rng{seed};
  for (int i = 0; i < host_count; ++i) {
    for (int j = i + 1; j < host_count; ++j) {
      if (!rng.bernoulli(density)) continue;
      const double base = rng.lognormal(4.0, 0.6);  // ~30-200 ms levels
      for (int k = 0; k < 2; ++k) {
        meas::Measurement m;
        m.src = topo::HostId{i};
        m.dst = topo::HostId{j};
        m.completed = true;
        for (auto& s : m.samples) {
          s.lost = rng.bernoulli(0.02);
          s.rtt_ms = base + rng.uniform(0.0, 5.0);
        }
        ds.measurements.push_back(std::move(m));
      }
    }
  }
  return ds;
}

template <typename Fn>
double once_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool identical_results(const std::vector<core::PairResult>& a,
                       const std::vector<core::PairResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].default_value != b[i].default_value ||
        a[i].alternate_value != b[i].alternate_value || a[i].via != b[i].via ||
        a[i].alternate_estimate.mean != b[i].alternate_estimate.mean ||
        a[i].alternate_estimate.var_of_mean !=
            b[i].alternate_estimate.var_of_mean) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "dense_kernel")) return 2;
  namespace bench = pathsel::bench;

  const double scale = bench::bench_scale();
  const auto max_n = static_cast<int>(512 * scale);

  std::printf("==============================================================\n");
  std::printf("dense_kernel: one-hop alternate sweep, min-plus vs. search\n");
  std::printf("scale: %.2f (N sweep capped at %d); hardware threads: %u\n",
              scale, max_n < 64 ? 64 : max_n, hardware_thread_count());
  std::printf("==============================================================\n");

  bench::notef(
      "n,density,edges,pairs,search_ms,dense_ms,speedup,identical\n");
  bool all_identical = true;
  double worst_speedup_at_256_plus = -1.0;
  for (const int n : {64, 128, 256, 512}) {
    if (n > 64 && n > max_n) continue;  // PATHSEL_BENCH_SCALE trim
    for (const double density : {0.5, 1.0}) {
      const meas::Dataset ds =
          make_mesh(n, density, 2024 + static_cast<std::uint64_t>(n));
      core::BuildOptions build;
      build.min_samples = 1;
      const core::PathTable table = core::PathTable::build(ds, build);

      core::AnalyzerOptions search_opt;
      search_opt.max_intermediate_hosts = 1;
      search_opt.kernel = core::Kernel::kSearch;
      core::AnalyzerOptions dense_opt = search_opt;
      dense_opt.kernel = core::Kernel::kDense;

      std::vector<core::PairResult> search_results;
      const double search_ms = once_ms([&] {
        search_results = core::analyze_alternate_paths(table, search_opt);
      });
      std::vector<core::PairResult> dense_results;
      const double dense_ms = once_ms([&] {
        dense_results = core::analyze_alternate_paths(table, dense_opt);
      });

      const bool identical = identical_results(search_results, dense_results);
      all_identical = all_identical && identical;
      const double speedup = dense_ms > 0.0 ? search_ms / dense_ms : 0.0;
      if (n >= 256 && (worst_speedup_at_256_plus < 0.0 ||
                       speedup < worst_speedup_at_256_plus)) {
        worst_speedup_at_256_plus = speedup;
      }
      bench::notef("%d,%.1f,%zu,%zu,%.2f,%.2f,%.2fx,%s\n", n, density,
                   table.edges().size(), search_results.size(), search_ms,
                   dense_ms, speedup, identical ? "yes" : "NO");
    }
  }
  if (worst_speedup_at_256_plus < 0.0) {
    bench::notef("\nsummary: N >= 256 trimmed at this scale; results %s\n",
                 all_identical ? "bit-identical" : "DIVERGED");
  } else {
    bench::notef("\nsummary: dense kernel %s the search at N >= 256 "
                 "(worst speedup %.2fx); results %s\n",
                 worst_speedup_at_256_plus > 1.0 ? "beats" : "does not beat",
                 worst_speedup_at_256_plus, all_identical ? "bit-identical"
                                                          : "DIVERGED");
  }
  return pathsel::bench::finish() != 0 || !all_identical ? 1 : 0;
}
