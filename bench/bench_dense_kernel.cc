// Dense min-plus kernel: differential timings and the SIMD scaling curve.
//
// Part 1 — engine differential (N ∈ {64..512}, densities 0.5/1.0): the
// one-hop alternate-path sweep through the cache-blocked O(N³) min-plus
// kernel against the per-pair Bellman-Ford reference (O(E) per pair,
// ~O(N⁴) on dense meshes), re-checking that both engines return
// bit-identical PairResult vectors — a speedup must never come from a
// different answer.  The largest run also calibrates the search's
// ns-per-relaxation, which part 2 uses to estimate search time at sizes
// where actually running it would take hours.
//
// Part 2 — SIMD scaling curve (N ∈ {1024..8192} over degree-/tier-weighted
// meshes from topo::generate_weighted_mesh): times the scalar and SIMD
// (AVX2 when available) inner loops of min_plus_square on the same weight
// matrix, checks the outputs bitwise-identical, and reports a scaling curve
// — N, realized density, GFLOP-equivalent rate (one add + one compare per
// relayed cell update), SIMD-vs-scalar speedup, and the estimated
// speedup-vs-search — as a table and series in the bench-JSON schema.  The
// committed baseline (bench/baselines/) gates regressions in CI via
// tools/check_bench_regression.py.
//
// PATHSEL_BENCH_SCALE < 1 trims the upper end of both N sweeps for quick
// CI runs (scale 0.2: part 1 stops at 64, the curve at 1024).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"

#include "core/alternate.h"
#include "core/dense_kernel.h"
#include "core/path_table.h"
#include "meas/dataset.h"
#include "topo/generator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace pathsel;

// A random mesh of `host_count` hosts where each pair is measured with
// probability `density`; RTT levels from a seeded Rng, light random loss.
meas::Dataset make_mesh(int host_count, double density, std::uint64_t seed) {
  meas::Dataset ds;
  ds.name = "dense-kernel-mesh";
  ds.kind = meas::MeasurementKind::kTraceroute;
  ds.duration = Duration::days(1);
  for (int i = 0; i < host_count; ++i) ds.hosts.push_back(topo::HostId{i});
  Rng rng{seed};
  for (int i = 0; i < host_count; ++i) {
    for (int j = i + 1; j < host_count; ++j) {
      if (!rng.bernoulli(density)) continue;
      const double base = rng.lognormal(4.0, 0.6);  // ~30-200 ms levels
      for (int k = 0; k < 2; ++k) {
        meas::Measurement m;
        m.src = topo::HostId{i};
        m.dst = topo::HostId{j};
        m.completed = true;
        for (auto& s : m.samples) {
          s.lost = rng.bernoulli(0.02);
          s.rtt_ms = base + rng.uniform(0.0, 5.0);
        }
        ds.measurements.push_back(std::move(m));
      }
    }
  }
  return ds;
}

template <typename Fn>
double once_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool identical_results(const std::vector<core::PairResult>& a,
                       const std::vector<core::PairResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].default_value != b[i].default_value ||
        a[i].alternate_value != b[i].alternate_value || a[i].via != b[i].via ||
        a[i].alternate_estimate.mean != b[i].alternate_estimate.mean ||
        a[i].alternate_estimate.var_of_mean !=
            b[i].alternate_estimate.var_of_mean) {
      return false;
    }
  }
  return true;
}

// Part 1: engine differential.  Returns the calibrated search cost in
// ns per relaxation (from the largest run), or 0 when everything was
// trimmed; sets `all_identical` false on any divergence.
double run_engine_differential(double scale, bool& all_identical) {
  const auto max_n = static_cast<int>(512 * scale);
  namespace bench = pathsel::bench;
  bench::notef(
      "n,density,edges,pairs,search_ms,dense_ms,speedup,identical\n");
  double worst_speedup_at_256_plus = -1.0;
  double search_ns_per_relaxation = 0.0;
  for (const int n : {64, 128, 256, 512}) {
    if (n > 64 && n > max_n) continue;  // PATHSEL_BENCH_SCALE trim
    for (const double density : {0.5, 1.0}) {
      const meas::Dataset ds =
          make_mesh(n, density, 2024 + static_cast<std::uint64_t>(n));
      core::BuildOptions build;
      build.min_samples = 1;
      const core::PathTable table = core::PathTable::build(ds, build);

      core::AnalyzerOptions search_opt;
      search_opt.max_intermediate_hosts = 1;
      search_opt.kernel = core::Kernel::kSearch;
      core::AnalyzerOptions dense_opt = search_opt;
      dense_opt.kernel = core::Kernel::kDense;

      std::vector<core::PairResult> search_results;
      const double search_ms = once_ms([&] {
        search_results = core::analyze_alternate_paths(table, search_opt);
      });
      std::vector<core::PairResult> dense_results;
      const double dense_ms = once_ms([&] {
        dense_results = core::analyze_alternate_paths(table, dense_opt);
      });

      const bool identical = identical_results(search_results, dense_results);
      all_identical = all_identical && identical;
      const double speedup = dense_ms > 0.0 ? search_ms / dense_ms : 0.0;
      if (n >= 256 && (worst_speedup_at_256_plus < 0.0 ||
                       speedup < worst_speedup_at_256_plus)) {
        worst_speedup_at_256_plus = speedup;
      }
      const double edges = static_cast<double>(table.edges().size());
      // ~2·E² edge relaxations per full search sweep; keep the calibration
      // from the largest (most representative) run.
      if (edges > 0.0) {
        search_ns_per_relaxation = search_ms * 1e6 / (2.0 * edges * edges);
      }
      bench::notef("%d,%.1f,%zu,%zu,%.2f,%.2f,%.2fx,%s\n", n, density,
                   table.edges().size(), search_results.size(), search_ms,
                   dense_ms, speedup, identical ? "yes" : "NO");
    }
  }
  if (worst_speedup_at_256_plus < 0.0) {
    bench::notef("\nsummary: N >= 256 trimmed at this scale; results %s\n",
                 all_identical ? "bit-identical" : "DIVERGED");
  } else {
    bench::notef("\nsummary: dense kernel %s the search at N >= 256 "
                 "(worst speedup %.2fx); results %s\n",
                 worst_speedup_at_256_plus > 1.0 ? "beats" : "does not beat",
                 worst_speedup_at_256_plus, all_identical ? "bit-identical"
                                                          : "DIVERGED");
  }
  return search_ns_per_relaxation;
}

// Part 2: SIMD scaling curve over degree-/tier-weighted meshes.
bool run_scaling_curve(double scale, double search_ns_per_relaxation) {
  namespace bench = pathsel::bench;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  struct CurvePoint {
    int n;
    double density;
  };
  // Density tapers with N so the full-scale sweep stays in whole-bench
  // minutes: the kernel's useful work is ~2·density·N³ flop-equivalents.
  const CurvePoint points[] = {{1024, 0.5}, {2048, 0.5}, {4096, 0.25},
                               {8192, 0.125}};
  const auto max_n = static_cast<int>(8192 * scale);
  if (max_n < 1024) {
    bench::notef("\nscaling curve: trimmed entirely at scale %.2f\n", scale);
    return true;
  }

  Table table{"simd scaling curve (min-plus kernel)"};
  table.set_header({"n", "density", "edges", "scalar_ms", "simd_ms", "mode",
                    "gflops", "simd_speedup", "est_search_speedup",
                    "identical"});
  Series rate_series;
  rate_series.name = "simd_gflops";
  Series speedup_series;
  speedup_series.name = "simd_speedup_vs_scalar";

  const core::SimdMode simd_mode =
      core::resolve_simd_mode(core::SimdMode::kAuto);
  bool all_identical = true;
  for (const CurvePoint& pt : points) {
    if (pt.n > max_n) continue;  // PATHSEL_BENCH_SCALE trim
    topo::WeightedMeshConfig cfg;
    cfg.seed = 4242 + static_cast<std::uint64_t>(pt.n);
    cfg.hosts = pt.n;
    cfg.target_density = pt.density;
    const topo::WeightedMesh mesh = topo::generate_weighted_mesh(cfg);

    const auto n = static_cast<std::size_t>(pt.n);
    core::WeightMatrix w;
    w.n = n;
    w.w.assign(n * n, kInf);
    for (const topo::WeightedMeshEdge& e : mesh.edges) {
      const auto a = static_cast<std::size_t>(e.a);
      const auto b = static_cast<std::size_t>(e.b);
      w.w[a * n + b] = e.rtt_ms;
      w.w[b * n + a] = e.rtt_ms;
    }

    core::MinPlusSquare scalar_out, simd_out;
    const double scalar_ms = once_ms([&] {
      scalar_out = std::move(
          core::min_plus_square(w, 0, nullptr, core::SimdMode::kScalar)
              .value());
    });
    const double simd_ms = once_ms([&] {
      simd_out = std::move(
          core::min_plus_square(w, 0, nullptr, simd_mode).value());
    });

    const bool identical =
        scalar_out.via == simd_out.via &&
        std::memcmp(scalar_out.best.data(), simd_out.best.data(),
                    scalar_out.best.size() * sizeof(double)) == 0;
    all_identical = all_identical && identical;

    // One relayed cell update = one add + one compare: 2 flop-equivalents
    // per finite (i, k) pair per column.  The symmetric matrix has 2·E
    // finite cells.
    const double edges = static_cast<double>(mesh.edges.size());
    const double flops = 2.0 * (2.0 * edges) * static_cast<double>(n);
    const double gflops = simd_ms > 0.0 ? flops / (simd_ms * 1e6) : 0.0;
    const double realized_density =
        edges / (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
    const double speedup = simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0;
    // ~2·E² relaxations for the reference search, priced at the part-1
    // calibration (0 when part 1 was trimmed: column reads n/a).
    const double est_search_ms =
        search_ns_per_relaxation * 2.0 * edges * edges / 1e6;
    const double est_search_speedup =
        simd_ms > 0.0 && est_search_ms > 0.0 ? est_search_ms / simd_ms : 0.0;

    table.add_row({std::to_string(pt.n), Table::fmt(realized_density, 3),
                   std::to_string(mesh.edges.size()),
                   Table::fmt(scalar_ms, 1), Table::fmt(simd_ms, 1),
                   core::simd_mode_name(simd_mode), Table::fmt(gflops, 2),
                   Table::fmt(speedup, 2) + "x",
                   est_search_speedup > 0.0
                       ? Table::fmt(est_search_speedup, 0) + "x"
                       : std::string{"n/a"},
                   identical ? "yes" : "NO"});
    rate_series.x.push_back(pt.n);
    rate_series.y.push_back(gflops);
    speedup_series.x.push_back(pt.n);
    speedup_series.y.push_back(speedup);
  }
  bench::emit(table);
  bench::emit_series("simd scaling curve", {rate_series, speedup_series});
  bench::notef("scaling summary: simd=%s, outputs %s\n",
               core::simd_mode_name(simd_mode),
               all_identical ? "bit-identical" : "DIVERGED");
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "dense_kernel")) return 2;
  namespace bench = pathsel::bench;

  const double scale = bench::bench_scale();
  const auto max_n = static_cast<int>(512 * scale);

  std::printf("==============================================================\n");
  std::printf("dense_kernel: one-hop alternate sweep, min-plus vs. search\n");
  std::printf("scale: %.2f (N sweep capped at %d); hardware threads: %u; "
              "simd: %s\n",
              scale, max_n < 64 ? 64 : max_n, hardware_thread_count(),
              core::simd_mode_name(
                  core::resolve_simd_mode(core::SimdMode::kAuto)));
  std::printf("==============================================================\n");

  bool all_identical = true;
  const double search_ns_per_relaxation =
      run_engine_differential(scale, all_identical);
  const bool curve_identical =
      run_scaling_curve(scale, search_ns_per_relaxation);

  return pathsel::bench::finish() != 0 || !all_identical || !curve_identical
             ? 1
             : 0;
}
