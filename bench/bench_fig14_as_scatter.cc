// Figure 14: scatter of per-AS appearances in default paths (x) vs best
// alternate paths (y) for the UW1 dataset.
#include "bench_util.h"

#include "core/as_analysis.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 14", "per-AS appearances: default paths (x) vs best alternates (y), UW1",
      "no significant number of ASes is substantially more represented in "
      "either the defaults or the alternates (points hug the diagonal)");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  const auto table = core::PathTable::build(catalog.uw1(), opt);
  const auto results = core::analyze_alternate_paths(table, {});
  const auto apps = core::as_appearances(table, results);

  std::printf("# Figure 14: as_id,default_count,alternate_count\n");
  std::printf("as,default,alternate\n");
  std::string csv = "as,default,alternate";
  std::size_t above = 0;
  std::size_t below = 0;
  for (const auto& a : apps) {
    char line[96];
    std::snprintf(line, sizeof line, "%d,%zu,%zu", a.as.value(),
                  a.default_count, a.alternate_count);
    std::printf("%s\n", line);
    csv += '\n';
    csv += line;
    // Count strong outliers: >4x away from the diagonal with volume.
    if (a.alternate_count > 4 * std::max<std::size_t>(a.default_count, 1)) {
      ++above;
    }
    if (a.default_count > 4 * std::max<std::size_t>(a.alternate_count, 1)) {
      ++below;
    }
  }
  bench::note(csv);
  Table summary{"Figure 14 summary"};
  summary.set_header({"ASes", ">4x alternate-heavy", ">4x default-heavy"});
  summary.add_row({std::to_string(apps.size()), std::to_string(above),
                   std::to_string(below)});
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig14_as_scatter")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
