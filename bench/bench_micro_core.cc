// Microbenchmarks of the analysis layer (google-benchmark).
#include <benchmark/benchmark.h>

#include "bench_gbench_report.h"

#include "core/alternate.h"
#include "core/median.h"
#include "core/path_table.h"
#include "meas/catalog.h"
#include "stats/histogram.h"
#include "stats/tdist.h"
#include "util/rng.h"

namespace pathsel {
namespace {

const meas::Dataset& small_uw3() {
  static meas::Catalog catalog{meas::CatalogConfig{.seed = 7, .scale = 0.05}};
  return catalog.uw3();
}

void BM_PathTableBuild(benchmark::State& state) {
  const auto& ds = small_uw3();
  core::BuildOptions opt;
  opt.min_samples = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PathTable::build(ds, opt));
  }
}
BENCHMARK(BM_PathTableBuild);

void BM_AlternateAnalysisRtt(benchmark::State& state) {
  core::BuildOptions opt;
  opt.min_samples = 5;
  const auto table = core::PathTable::build(small_uw3(), opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_alternate_paths(table, {}));
  }
}
BENCHMARK(BM_AlternateAnalysisRtt);

void BM_AlternateAnalysisLoss(benchmark::State& state) {
  core::BuildOptions opt;
  opt.min_samples = 5;
  const auto table = core::PathTable::build(small_uw3(), opt);
  core::AnalyzerOptions analyze;
  analyze.metric = core::Metric::kLoss;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_alternate_paths(table, analyze));
  }
}
BENCHMARK(BM_AlternateAnalysisLoss);

void BM_OneHopAnalysis(benchmark::State& state) {
  core::BuildOptions opt;
  opt.min_samples = 5;
  const auto table = core::PathTable::build(small_uw3(), opt);
  core::AnalyzerOptions analyze;
  analyze.max_intermediate_hosts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_alternate_paths(table, analyze));
  }
}
BENCHMARK(BM_OneHopAnalysis);

void BM_HistogramConvolve(benchmark::State& state) {
  const auto bins = static_cast<std::size_t>(state.range(0));
  stats::Histogram a{0.0, 1.0, bins};
  stats::Histogram b{0.0, 1.0, bins};
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    a.add(rng.uniform(0.0, static_cast<double>(bins)));
    b.add(rng.uniform(0.0, static_cast<double>(bins)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::Histogram::convolve(a, b));
  }
}
BENCHMARK(BM_HistogramConvolve)->Arg(64)->Arg(256)->Arg(1024);

void BM_StudentTQuantile(benchmark::State& state) {
  double v = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::student_t_quantile(0.975, v));
    v = v < 200.0 ? v + 1.0 : 2.0;
  }
}
BENCHMARK(BM_StudentTQuantile);

}  // namespace
}  // namespace pathsel

PATHSEL_GBENCH_MAIN("micro_core")
