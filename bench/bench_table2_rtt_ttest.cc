// Table 2: percentage of paths whose RTT difference between the best
// alternate and the default is significant at the 95% level.
#include "bench_util.h"

#include "core/alternate.h"
#include "core/confidence.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Table 2", "Welch t-test classification of RTT differences (95%)",
      "better 20-32%, indeterminate 32-41%, worse 29-48% "
      "(UW1 28/41/31, UW3 30/41/29, D2-NA 20/32/48, D2 32/37/31)");
  auto catalog = bench::make_catalog();

  Table table{"Table 2: RTT significance"};
  table.set_header({"dataset", "better", "indeterminate", "worse"});
  for (const char* name : {"UW1", "UW3", "D2-NA", "D2"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto ptable = core::PathTable::build(catalog.by_name(name), opt);
    const auto results = core::analyze_alternate_paths(ptable, {});
    const auto tally = core::classify_significance(results);
    table.add_row({name, Table::pct(tally.better),
                   Table::pct(tally.indeterminate), Table::pct(tally.worse)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "table2_rtt_ttest")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
