// Figure 13: CDF over hosts of the normalized improvement contribution (how
// often a host appears as the intermediary of a superior one-hop alternate,
// weighted by the improvement).
#include "bench_util.h"

#include "core/contribution.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 13", "CDF of per-host normalized improvement contribution (UW3)",
      "the distribution lacks a heavy tail: no small set of hosts "
      "contributes an outsized share of the superior alternates");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  const auto table = core::PathTable::build(catalog.uw3(), opt);
  const auto contributions =
      core::improvement_contributions(table, core::Metric::kRtt);

  stats::EmpiricalCdf cdf;
  for (const auto& c : contributions) cdf.add(c.normalized);
  bench::emit_series("Figure 13: normalized improvement contribution",
               {bench::cdf_series(cdf, "UW3 hosts", 0.0, 1.0)});

  Table summary{"Figure 13 summary"};
  summary.set_header({"hosts", "max contribution", "p90", "mean"});
  summary.add_row({std::to_string(contributions.size()),
                   Table::fmt(cdf.value_at_fraction(1.0), 0),
                   Table::fmt(cdf.value_at_fraction(0.9), 0), "100"});
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig13_contribution")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
