// Figure 15: CDF of the improvement in propagation delay (10th-percentile
// RTT) overlaid with the mean-RTT improvement CDF (UW3).
#include "bench_util.h"

#include "core/figures.h"
#include "core/propagation.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 15", "propagation-delay vs mean-RTT improvement CDFs (UW3)",
      "superior alternates still exist for ~50% of paths on propagation "
      "delay alone, but the magnitudes shrink substantially");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  opt.keep_samples = true;
  const auto table = core::PathTable::build(catalog.uw3(), opt);
  const auto analysis = core::analyze_propagation(table);

  const auto rtt_cdf = core::improvement_cdf(analysis.rtt_results);
  const auto prop_cdf = core::improvement_cdf(analysis.propagation_results);
  bench::emit_series("Figure 15: propagation vs mean RTT (ms)",
               {bench::cdf_series(prop_cdf, "propagation delay"),
                bench::cdf_series(rtt_cdf, "mean round-trip time")});

  Table summary{"Figure 15 summary"};
  summary.set_header({"metric", "% better", "p95 improvement (ms)"});
  summary.add_row({"propagation", Table::pct(prop_cdf.fraction_above(0.0)),
                   Table::fmt(prop_cdf.value_at_fraction(0.95), 1)});
  summary.add_row({"mean RTT", Table::pct(rtt_cdf.fraction_above(0.0)),
                   Table::fmt(rtt_cdf.value_at_fraction(0.95), 1)});
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig15_propagation")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
