// Microbenchmarks of the topology/routing/simulation substrate.
#include <benchmark/benchmark.h>

#include "bench_gbench_report.h"

#include "meas/collector.h"
#include "route/bgp.h"
#include "route/igp.h"
#include "route/path.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace pathsel {
namespace {

topo::GeneratorConfig gen_config() {
  topo::GeneratorConfig cfg;
  cfg.seed = 42;
  cfg.backbone_count = 6;
  cfg.regional_count = 20;
  cfg.stub_count = 70;
  return cfg;
}

void BM_TopologyGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::generate_topology(gen_config()));
  }
}
BENCHMARK(BM_TopologyGenerate);

void BM_IgpTablesBuild(benchmark::State& state) {
  const auto topo = topo::generate_topology(gen_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(route::IgpTables{topo});
  }
}
BENCHMARK(BM_IgpTablesBuild);

void BM_BgpTablesBuild(benchmark::State& state) {
  const auto topo = topo::generate_topology(gen_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(route::BgpTables{topo});
  }
}
BENCHMARK(BM_BgpTablesBuild);

void BM_PathResolve(benchmark::State& state) {
  const auto topo = topo::generate_topology(gen_config());
  const route::IgpTables igp{topo};
  const route::BgpTables bgp{topo};
  const route::PathResolver resolver{topo, igp, bgp};
  std::size_t i = 0;
  const auto& hosts = topo.hosts();
  for (auto _ : state) {
    const auto& src = hosts[i % hosts.size()];
    const auto& dst = hosts[(i * 7 + 3) % hosts.size()];
    if (src.id != dst.id) {
      benchmark::DoNotOptimize(resolver.resolve(src.attachment, dst.attachment));
    }
    ++i;
  }
}
BENCHMARK(BM_PathResolve);

void BM_Traceroute(benchmark::State& state) {
  const sim::Network net{topo::generate_topology(gen_config()),
                         sim::NetworkConfig{}};
  std::size_t i = 0;
  const std::size_t n = net.topology().host_count();
  for (auto _ : state) {
    const topo::HostId src{static_cast<std::int32_t>(i % n)};
    const topo::HostId dst{static_cast<std::int32_t>((i * 13 + 1) % n)};
    if (src != dst) {
      benchmark::DoNotOptimize(net.traceroute(
          src, dst, SimTime::start() + Duration::seconds(static_cast<double>(i))));
    }
    ++i;
  }
}
BENCHMARK(BM_Traceroute);

void BM_TcpTransfer(benchmark::State& state) {
  const sim::Network net{topo::generate_topology(gen_config()),
                         sim::NetworkConfig{}};
  std::size_t i = 0;
  const std::size_t n = net.topology().host_count();
  for (auto _ : state) {
    const topo::HostId src{static_cast<std::int32_t>(i % n)};
    const topo::HostId dst{static_cast<std::int32_t>((i * 13 + 1) % n)};
    if (src != dst) {
      benchmark::DoNotOptimize(net.tcp_transfer(
          src, dst, SimTime::start() + Duration::seconds(static_cast<double>(i))));
    }
    ++i;
  }
}
BENCHMARK(BM_TcpTransfer);

void BM_CollectCampaign(benchmark::State& state) {
  const sim::Network net{topo::generate_topology(gen_config()),
                         sim::NetworkConfig{}};
  std::vector<topo::HostId> hosts;
  for (int i = 0; i < 15; ++i) hosts.push_back(topo::HostId{i});
  meas::CollectorConfig cfg;
  cfg.duration = Duration::hours(12);
  cfg.mean_interval = Duration::seconds(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(meas::collect(net, hosts, cfg, "bench"));
  }
}
BENCHMARK(BM_CollectCampaign);

}  // namespace
}  // namespace pathsel

PATHSEL_GBENCH_MAIN("micro_sim")
