// Figure 6: mean- vs median-based alternate selection (one-hop, D2-NA).
// Medians of synthetic paths come from convolving per-hop sample
// distributions.
#include "bench_util.h"

#include "core/alternate.h"
#include "core/figures.h"
#include "core/median.h"
#include "stats/ks.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 6", "mean vs median RTT improvement CDFs, one-hop, D2-NA",
      "the two curves are nearly indistinguishable: using the mean instead "
      "of the median does not change the result");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  opt.keep_samples = true;
  const auto table = core::PathTable::build(catalog.d2_na(), opt);

  core::AnalyzerOptions mean_opt;
  mean_opt.max_intermediate_hosts = 1;
  const auto means = core::analyze_alternate_paths(table, mean_opt);
  const auto medians = core::analyze_median_alternates(table);

  stats::EmpiricalCdf mean_cdf = core::improvement_cdf(means);
  stats::EmpiricalCdf median_cdf;
  for (const auto& r : medians) median_cdf.add(r.improvement());

  bench::emit_series("Figure 6: mean vs median improvement CDF (ms)",
               {bench::cdf_series(mean_cdf, "mean (one-hop)"),
                bench::cdf_series(median_cdf, "median (one-hop)")});

  Table summary{"Figure 6 summary"};
  summary.set_header({"statistic", "pairs", "% better", "median improvement"});
  summary.add_row({"mean", std::to_string(means.size()),
                   Table::pct(mean_cdf.fraction_above(0.0)),
                   Table::fmt(mean_cdf.value_at_fraction(0.5), 1) + " ms"});
  summary.add_row({"median", std::to_string(medians.size()),
                   Table::pct(median_cdf.fraction_above(0.0)),
                   Table::fmt(median_cdf.value_at_fraction(0.5), 1) + " ms"});
  bench::emit(summary);

  const auto ks = stats::ks_two_sample(mean_cdf.sorted_values(),
                                       median_cdf.sorted_values());
  bench::notef("KS distance between the two CDFs: %.3f (p = %.3f)%s\n",
               ks.statistic, ks.p_value,
               ks.p_value > 0.05 ? " -- statistically indistinguishable" : "");
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig06_median")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
