// Figure 9: RTT improvement CDF broken down by time of day (UW3).
#include "bench_util.h"

#include "core/figures.h"
#include "core/timeofday.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 9", "UW3 RTT improvement CDF by weekday period / weekend",
      "the effect holds at every time of day; alternates do best during "
      "peak working hours (0600-1200 PST) and least on weekends/nights");
  auto catalog = bench::make_catalog();

  core::TimeOfDayOptions opt;
  opt.min_samples = bench::scaled_min_samples(6);
  const auto bins = core::analyze_by_time_of_day(catalog.uw3(), opt);

  std::vector<Series> series;
  Table summary{"Figure 9 summary"};
  summary.set_header({"bin", "pairs", "% better", "median improvement (ms)"});
  for (const auto& bin : bins) {
    const auto cdf = core::improvement_cdf(bin.results);
    if (cdf.empty()) continue;
    series.push_back(bench::cdf_series(cdf, bin.label));
    summary.add_row({bin.label, std::to_string(bin.results.size()),
                     Table::pct(cdf.fraction_above(0.0)),
                     Table::fmt(cdf.value_at_fraction(0.5), 1)});
  }
  bench::emit_series("Figure 9: RTT improvement CDF by time of day",
               series);
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig09_tod_rtt")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
