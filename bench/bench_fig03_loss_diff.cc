// Figure 3: CDF of the difference between the mean loss rate on each path
// and the best composed loss rate of an alternate path.
#include "bench_util.h"

#include "core/alternate.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 3", "CDF of loss-rate improvement (default - best alternate)",
      "75-85% of paths have a lower-loss alternate; 5-50% gain >= 5 "
      "percentage points (D2 strongest); vertical line at 0 = lossless pairs");
  auto catalog = bench::make_catalog();

  std::vector<Series> series;
  Table summary{"Figure 3 summary"};
  summary.set_header(
      {"dataset", "pairs", "% better", "% gain >= 5pp", "% both lossless"});
  for (const char* name : {"UW1", "UW3", "D2-NA", "D2"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto table = core::PathTable::build(catalog.by_name(name), opt);
    core::AnalyzerOptions analyze;
    analyze.metric = core::Metric::kLoss;
    const auto results = core::analyze_alternate_paths(table, analyze);
    const auto cdf = core::improvement_cdf(results);
    std::size_t lossless = 0;
    for (const auto& r : results) {
      if (r.default_value == 0.0 && r.alternate_value == 0.0) ++lossless;
    }
    series.push_back(bench::cdf_series(cdf, name));
    summary.add_row({name, std::to_string(results.size()),
                     Table::pct(cdf.fraction_above(0.0)),
                     Table::pct(cdf.fraction_above(0.05)),
                     Table::pct(static_cast<double>(lossless) /
                                static_cast<double>(results.size()))});
  }
  bench::emit_series("Figure 3: loss-rate improvement CDF", series);
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig03_loss_diff")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
