// Ablation: overlay-routing design choices (the Detour/RON direction the
// paper motivated).  Sweeps the relay budget, detour hysteresis and probe
// interval on one simulated day and reports ground-truth savings.
#include "bench_util.h"

#include "core/overlay.h"
#include "topo/generator.h"

namespace pathsel {
namespace {

sim::Network make_network() {
  topo::GeneratorConfig g;
  g.seed = 4242;
  g.backbone_count = 5;
  g.regional_count = 14;
  g.stub_count = 40;
  g.rate_limited_host_fraction = 0.0;
  sim::NetworkConfig cfg;
  cfg.seed = 4242;
  return sim::Network{topo::generate_topology(g), cfg};
}

void run() {
  bench::print_experiment_header(
      "Ablation: overlay routing",
      "ground-truth RTT saving of a Detour-style overlay vs design knobs",
      "design ablation (no paper counterpart): one relay captures most of "
      "the gain; hysteresis trades saving for stability; stale probes cost");
  const auto net = make_network();
  std::vector<topo::HostId> members;
  for (int i = 0; i < 12; ++i) members.push_back(topo::HostId{i * 3});

  Table table{"overlay ablation (one simulated day, 12 nodes)"};
  table.set_header({"relays", "hysteresis", "probe interval", "mean saving",
                    "detour fraction"});
  const SimTime begin = SimTime::start() + Duration::hours(6);
  struct Variant {
    int relays;
    double hysteresis;
    double probe_minutes;
  };
  const Variant variants[] = {
      {1, 0.05, 10.0}, {2, 0.05, 10.0}, {3, 0.05, 10.0},
      {1, 0.00, 10.0}, {1, 0.20, 10.0}, {1, 0.50, 10.0},
      {1, 0.05, 2.0},  {1, 0.05, 60.0}, {1, 0.05, 240.0},
  };
  for (const Variant& v : variants) {
    core::OverlayConfig cfg;
    cfg.max_relays = v.relays;
    cfg.hysteresis = v.hysteresis;
    cfg.probe_interval = Duration::minutes(v.probe_minutes);
    core::OverlayMesh mesh{net, members, cfg};
    const auto report = mesh.evaluate(begin, Duration::hours(24));
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.0f min", v.probe_minutes);
    table.add_row({std::to_string(v.relays), Table::fmt(v.hysteresis, 2),
                   probe,
                   Table::fmt(report.mean_saving(), 1) + " ms (" +
                       Table::pct(report.mean_saving() /
                                  report.direct_metric.mean()) +
                       ")",
                   Table::pct(report.detour_fraction())});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "ablation_overlay")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
