// Figure 4: CDF of the difference between the best one-hop alternate
// bandwidth and the measured default bandwidth (kB/s), under the optimistic
// (max) and pessimistic (independent) loss compositions.
#include "bench_util.h"

#include "core/bandwidth.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 4", "CDF of bandwidth improvement (best alternate - default), kB/s",
      "70-80% of paths have a higher-bandwidth one-hop alternate; optimistic "
      "and pessimistic curves bound each other tightly");
  auto catalog = bench::make_catalog();

  std::vector<Series> series;
  Table summary{"Figure 4 summary"};
  summary.set_header({"dataset", "composition", "pairs", "% better"});
  for (const char* name : {"N2", "N2-NA"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto table = core::PathTable::build(catalog.by_name(name), opt);
    for (const auto& [label, comp] :
         {std::pair{"pessimistic", core::LossComposition::kPessimistic},
          std::pair{"optimistic", core::LossComposition::kOptimistic}}) {
      const auto results = core::analyze_bandwidth(table, comp);
      const auto cdf = core::bandwidth_improvement_cdf(results);
      series.push_back(
          bench::cdf_series(cdf, std::string(name) + " " + label));
      summary.add_row({name, label, std::to_string(results.size()),
                       Table::pct(cdf.fraction_above(0.0))});
    }
  }
  bench::emit_series("Figure 4: bandwidth improvement CDF (kB/s)", series);
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig04_bw_diff")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
