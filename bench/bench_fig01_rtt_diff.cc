// Figure 1: CDF of the difference between the mean round-trip time on each
// path and the best mean RTT of an alternate path.
#include "bench_util.h"

#include "core/alternate.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 1", "CDF of mean RTT improvement (default - best alternate), ms",
      "30-55% of paths have a better alternate; a smaller fraction gains "
      ">= 20 ms; D2 shifted right of D2-NA by trans-oceanic latency");
  auto catalog = bench::make_catalog();

  std::vector<Series> series;
  Table summary{"Figure 1 summary"};
  summary.set_header({"dataset", "pairs", "% better", "% gain >= 20ms"});
  for (const char* name : {"UW1", "UW3", "D2-NA", "D2"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto table = core::PathTable::build(catalog.by_name(name), opt);
    const auto results = core::analyze_alternate_paths(table, {});
    const auto cdf = core::improvement_cdf(results);
    series.push_back(bench::cdf_series(cdf, name));
    summary.add_row({name, std::to_string(results.size()),
                     Table::pct(cdf.fraction_above(0.0)),
                     Table::pct(cdf.fraction_above(20.0))});
  }
  bench::emit_series("Figure 1: RTT improvement CDF (ms)", series);
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig01_rtt_diff")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
