// Figure 11: long-term averaging vs simultaneous measurement.  UW4-B is the
// long-term time-average CDF; UW4-A yields a pair-averaged CDF (per-episode
// best alternates averaged per pair) and an unaveraged CDF (one point per
// pair per episode).
#include "bench_util.h"

#include "core/alternate.h"
#include "core/episodes.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 11", "UW4-B vs pair-averaged UW4-A vs unaveraged UW4-A (RTT, ms)",
      "good alternates are slightly MORE likely on a fine-grained timescale; "
      "the unaveraged curve has much broader tails in both directions");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  const auto uw4b_table = core::PathTable::build(catalog.uw4b(), opt);
  const auto uw4b_results = core::analyze_alternate_paths(uw4b_table, {});
  const auto uw4b_cdf = core::improvement_cdf(uw4b_results);

  const auto episodes = core::analyze_episodes(catalog.uw4a(), {});

  bench::emit_series("Figure 11: averaging-timescale comparison",
               {bench::cdf_series(uw4b_cdf, "UW4-B"),
                bench::cdf_series(episodes.pair_averaged, "pair-averaged UW4-A"),
                bench::cdf_series(episodes.unaveraged, "unaveraged UW4-A")});

  Table summary{"Figure 11 summary"};
  summary.set_header({"curve", "points", "% better", "p5 (ms)", "p95 (ms)"});
  auto row = [&summary](const char* label, const stats::EmpiricalCdf& cdf) {
    summary.add_row({label, std::to_string(cdf.size()),
                     Table::pct(cdf.fraction_above(0.0)),
                     Table::fmt(cdf.value_at_fraction(0.05), 1),
                     Table::fmt(cdf.value_at_fraction(0.95), 1)});
  };
  row("UW4-B (time-averaged)", uw4b_cdf);
  row("pair-averaged UW4-A", episodes.pair_averaged);
  row("unaveraged UW4-A", episodes.unaveraged);
  bench::emit(summary);
  bench::notef("episodes analyzed: %zu\n", episodes.episodes_analyzed);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig11_episodes")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
