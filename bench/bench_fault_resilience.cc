// Fault resilience: how gracefully the Table 1 / Figure 1 / Table 2 results
// degrade as deterministic fault injection (sim::FaultPlan) intensifies.
//
// Re-collects the UW3 campaign at 0/5/15/30% fault intensity (link flaps,
// exchange-fabric outages, BGP reconvergence blackholes, host crashes, ICMP
// storms, stuck probes) and reports, per intensity: the Table 1 coverage row,
// the failure-cause histogram, and the Figure 1 / Table 2 headline numbers
// from the surviving data.  The 0% row is byte-identical to the fault-free
// catalog, and every row is deterministic in the fault seed.
#include "bench_util.h"

#include "core/confidence.h"
#include "core/coverage.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Fault resilience",
      "UW3 re-collected under 0/5/15/30% fault intensity",
      "coverage and pair counts shrink with intensity; the surviving pairs "
      "still reproduce the Figure 1 / Table 2 shape (alternates exist, most "
      "differences significant) rather than collapsing");

  Table coverage{"Table 1 row under faults (UW3)"};
  coverage.set_header({"intensity", "attempts", "completed", "covered",
                       "coverage", "usable paths"});
  Table degradation{"Fig 1 / Table 2 degradation (UW3)"};
  degradation.set_header({"intensity", "pairs", "% better", "sig better",
                          "sig worse", "indeterminate"});
  Table failures{"failure causes"};
  failures.set_header({"intensity", "endpoint down", "probe", "blackhole",
                       "no route", "stuck"});

  for (const double intensity : {0.0, 0.05, 0.15, 0.30}) {
    meas::CatalogConfig cfg;
    cfg.seed = 1999;
    cfg.scale = bench::bench_scale();
    cfg.fault_intensity = intensity;
    meas::Catalog catalog{cfg};
    const meas::Dataset& ds = catalog.uw3();

    core::BuildOptions build;
    build.min_samples = bench::scaled_min_samples();
    const auto result = core::analyze_with_coverage(ds, build, {});
    const std::string label = Table::pct(intensity);
    if (!result.is_ok()) {
      // Graceful degradation all the way down: an intensity that wipes out
      // the dataset reports why instead of aborting the sweep.
      coverage.add_row({label, "-", "-", "-", "-", result.status().to_string()});
      continue;
    }
    const core::CoverageSummary& c = result.value().coverage;
    coverage.add_row({label, std::to_string(c.attempts),
                      std::to_string(c.completed),
                      std::to_string(c.covered_pairs) + " / " +
                          std::to_string(c.potential_pairs),
                      Table::pct(c.coverage()),
                      std::to_string(c.usable_edges)});

    const auto& results = result.value().results;
    const auto cdf = core::improvement_cdf(results);
    const auto tally = core::classify_significance(results, 0.95);
    degradation.add_row({label, std::to_string(results.size()),
                         Table::pct(cdf.fraction_above(0.0)),
                         Table::pct(tally.better), Table::pct(tally.worse),
                         Table::pct(tally.indeterminate)});

    const auto& f = c.failures_by_reason;
    failures.add_row(
        {label,
         std::to_string(f[static_cast<std::size_t>(
             meas::FailureReason::kEndpointDown)]),
         std::to_string(
             f[static_cast<std::size_t>(meas::FailureReason::kProbeFailure)]),
         std::to_string(
             f[static_cast<std::size_t>(meas::FailureReason::kBlackhole)]),
         std::to_string(
             f[static_cast<std::size_t>(meas::FailureReason::kNoRoute)]),
         std::to_string(
             f[static_cast<std::size_t>(meas::FailureReason::kStuckProbe)])});
  }

  bench::emit(coverage);
  bench::emit(failures);
  bench::emit(degradation);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fault_resilience")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
