// Figure 16: scatter of the propagation-delay component (y) of each pair's
// mean-RTT improvement (x), with the paper's six-group classification.
#include "bench_util.h"

#include "core/propagation.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 16", "propagation vs total RTT difference per pair (UW3)",
      "points mix propagation- and congestion-driven gains; group 6 "
      "(alternate wins despite longer propagation) clearly outnumbers its "
      "mirror group 3: many alternates go out of their way to avoid "
      "congestion");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  opt.keep_samples = true;
  const auto table = core::PathTable::build(catalog.uw3(), opt);
  const auto analysis = core::analyze_propagation(table);

  std::printf("# Figure 16: total_diff,prop_diff,group\n");
  std::printf("total,prop,group\n");
  std::string csv = "total,prop,group";
  for (std::size_t i = 0; i < analysis.scatter.size();
       i += std::max<std::size_t>(1, analysis.scatter.size() / 200)) {
    const auto& p = analysis.scatter[i];
    char line[64];
    std::snprintf(line, sizeof line, "%.2f,%.2f,%d", p.total_diff, p.prop_diff,
                  p.group);
    std::printf("%s\n", line);
    csv += '\n';
    csv += line;
  }
  bench::note(csv);

  Table summary{"Figure 16 group counts"};
  summary.set_header({"group", "meaning", "pairs"});
  const char* meaning[6] = {
      "alt better in both",       "alt prop better, queueing worse",
      "default wins despite prop", "default better in both",
      "default prop better, queue worse",
      "alt wins despite longer prop (avoids congestion)"};
  for (int g = 0; g < 6; ++g) {
    summary.add_row({std::to_string(g + 1), meaning[g],
                     std::to_string(analysis.group_counts[static_cast<std::size_t>(g)])});
  }
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig16_prop_scatter")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
