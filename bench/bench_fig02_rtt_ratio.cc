// Figure 2: CDF of the ratio between the default mean RTT and the best
// alternate's mean RTT (values > 1: alternate superior).
#include "bench_util.h"

#include "core/alternate.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 2", "CDF of relative RTT (default / best alternate)",
      "~10% of paths have >= 50% better latency via an alternate; the "
      "D2 vs D2-NA imbalance of Figure 1 largely disappears");
  auto catalog = bench::make_catalog();

  std::vector<Series> series;
  Table summary{"Figure 2 summary"};
  summary.set_header({"dataset", "% ratio > 1", "% ratio >= 1.5"});
  for (const char* name : {"UW1", "UW3", "D2-NA", "D2"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto table = core::PathTable::build(catalog.by_name(name), opt);
    const auto results = core::analyze_alternate_paths(table, {});
    const auto cdf = core::ratio_cdf(results);
    series.push_back(bench::cdf_series(cdf, name));
    summary.add_row({name, Table::pct(cdf.fraction_above(1.0)),
                     Table::pct(cdf.fraction_above(1.5))});
  }
  bench::emit_series("Figure 2: relative RTT CDF", series);
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig02_rtt_ratio")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
