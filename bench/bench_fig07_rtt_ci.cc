// Figure 7: RTT improvement CDF for UW3 with 95% confidence intervals
// plotted as error bars for every eighth point.
#include "bench_util.h"

#include "core/alternate.h"
#include "core/confidence.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 7", "UW3 RTT improvement CDF with per-pair 95% CIs",
      "most paths have relatively tight error bounds; variation alone does "
      "not explain the difference between alternate and default paths");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  const auto table = core::PathTable::build(catalog.uw3(), opt);
  const auto results = core::analyze_alternate_paths(table, {});
  const auto points = core::confidence_cdf(results);

  std::printf("# Figure 7: difference,fraction,ci_lo,ci_hi (every 8th point)\n");
  std::printf("difference,fraction,ci_lo,ci_hi\n");
  std::string csv = "difference,fraction,ci_lo,ci_hi";
  for (std::size_t i = 0; i < points.size(); i += 8) {
    const auto& p = points[i];
    char line[96];
    std::snprintf(line, sizeof line, "%.3f,%.4f,%.3f,%.3f", p.difference,
                  p.fraction, p.difference - p.half_width,
                  p.difference + p.half_width);
    std::printf("%s\n", line);
    csv += '\n';
    csv += line;
  }
  bench::note(csv);

  double mean_hw = 0.0;
  for (const auto& p : points) mean_hw += p.half_width;
  mean_hw /= static_cast<double>(points.size());
  Table summary{"Figure 7 summary"};
  summary.set_header({"pairs", "mean CI half-width (ms)"});
  summary.add_row({std::to_string(points.size()), Table::fmt(mean_hw, 2)});
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig07_rtt_ci")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
