// Serial vs. multi-threaded alternate-path sweep.
//
// Measures the end-to-end wall time of analyze_alternate_paths (the O(pairs ×
// Dijkstra) hot loop) and PathTable::build on a dense synthetic mesh at 1, 2,
// 4 and 8 threads, printing the speedup over the serial run.  The parallel
// layer guarantees bit-identical output for every thread count, which is
// re-checked here so a speedup can never come from dropped work.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "core/alternate.h"
#include "core/path_table.h"
#include "meas/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace pathsel;

// A full mesh of `host_count` hosts with per-pair RTT levels drawn from a
// seeded Rng — enough edges that one sweep takes a measurable fraction of a
// second at every thread count.
meas::Dataset make_mesh(int host_count, int invocations) {
  meas::Dataset ds;
  ds.name = "parallel-bench-mesh";
  ds.kind = meas::MeasurementKind::kTraceroute;
  ds.duration = Duration::days(1);
  for (int i = 0; i < host_count; ++i) ds.hosts.push_back(topo::HostId{i});
  Rng rng{42};
  for (int i = 0; i < host_count; ++i) {
    for (int j = i + 1; j < host_count; ++j) {
      const double base = rng.lognormal(4.0, 0.6);  // ~30-200 ms levels
      for (int k = 0; k < invocations; ++k) {
        meas::Measurement m;
        m.src = topo::HostId{i};
        m.dst = topo::HostId{j};
        m.completed = true;
        for (auto& s : m.samples) {
          s.lost = rng.bernoulli(0.03);
          s.rtt_ms = base + rng.uniform(0.0, 5.0);
        }
        ds.measurements.push_back(std::move(m));
      }
    }
  }
  return ds;
}

template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool same_results(const std::vector<core::PairResult>& a,
                  const std::vector<core::PairResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b ||
        a[i].default_value != b[i].default_value ||
        a[i].alternate_value != b[i].alternate_value ||
        a[i].via != b[i].via) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "micro_parallel")) return 2;
  namespace bench = pathsel::bench;
  constexpr int kHosts = 96;
  constexpr int kInvocations = 5;
  constexpr int kReps = 3;
  const meas::Dataset ds = make_mesh(kHosts, kInvocations);

  std::printf("==============================================================\n");
  std::printf("micro_parallel: alternate-path sweep, serial vs. threaded\n");
  std::printf("mesh: %d hosts, %zu measurements; hardware threads: %u\n",
              kHosts, ds.measurements.size(), hardware_thread_count());
  std::printf("==============================================================\n");

  core::BuildOptions build_serial;
  build_serial.min_samples = 2;
  build_serial.threads = 1;
  const core::PathTable table = core::PathTable::build(ds, build_serial);
  std::printf("path graph: %zu edges over %zu hosts\n\n", table.edges().size(),
              table.hosts().size());

  core::AnalyzerOptions serial_opt;
  serial_opt.threads = 1;
  const auto serial_results = core::analyze_alternate_paths(table, serial_opt);
  const double serial_sweep_ms = best_of_ms(kReps, [&] {
    (void)core::analyze_alternate_paths(table, serial_opt);
  });
  const double serial_build_ms = best_of_ms(kReps, [&] {
    (void)core::PathTable::build(ds, build_serial);
  });

  bench::notef("threads,sweep_ms,sweep_speedup,build_ms,build_speedup,identical\n");
  bench::notef("1,%.2f,1.00,%.2f,1.00,yes\n", serial_sweep_ms, serial_build_ms);
  for (const int threads : {2, 4, 8}) {
    core::AnalyzerOptions opt;
    opt.threads = threads;
    core::BuildOptions build;
    build.min_samples = 2;
    build.threads = threads;
    const auto results = core::analyze_alternate_paths(table, opt);
    const bool identical = same_results(serial_results, results);
    const double sweep_ms = best_of_ms(kReps, [&] {
      (void)core::analyze_alternate_paths(table, opt);
    });
    const double build_ms = best_of_ms(kReps, [&] {
      (void)core::PathTable::build(ds, build);
    });
    bench::notef("%d,%.2f,%.2f,%.2f,%.2f,%s\n", threads, sweep_ms,
                 serial_sweep_ms / sweep_ms, build_ms,
                 serial_build_ms / build_ms, identical ? "yes" : "NO");
  }
  bench::notef("\nsummary: sweep over %zu pairs; speedup scales with available "
               "cores, output bit-identical at every thread count\n",
               serial_results.size());
  return pathsel::bench::finish();
}
