// Table 3: percentage of paths whose loss-rate difference between the best
// alternate and the default is significant at the 95% level.
#include "bench_util.h"

#include "core/alternate.h"
#include "core/confidence.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Table 3", "Welch t-test classification of loss differences (95%)",
      "a zero class appears (pairs with no losses at all); the remaining "
      "pairs split between better/indeterminate/worse with better dominant "
      "in the lossy 1995 datasets");
  auto catalog = bench::make_catalog();

  Table table{"Table 3: loss significance"};
  table.set_header({"dataset", "better", "indeterminate", "zero", "worse"});
  for (const char* name : {"UW1", "UW3", "D2-NA", "D2"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto ptable = core::PathTable::build(catalog.by_name(name), opt);
    core::AnalyzerOptions analyze;
    analyze.metric = core::Metric::kLoss;
    const auto results = core::analyze_alternate_paths(ptable, analyze);
    const auto tally = core::classify_significance(results);
    table.add_row({name, Table::pct(tally.better),
                   Table::pct(tally.indeterminate), Table::pct(tally.zero),
                   Table::pct(tally.worse)});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "table3_loss_ttest")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
