// Scenario-matrix engine throughput: how fast does the what-if grid run
// sequentially, how much does the forked fan-out buy, and what does a pure
// merge (every cell reused) cost?
//
// A 4-cell grid (2 fault levels x {one-hop, disjoint:2}) over UW3 runs
// three ways: inline (workers = 0, every cell in-process — this is the run
// whose matrix.* phase timings and counters the perf gate pins), under two
// forked workers (wall-clock only: the children's counters die with them),
// and as a --resume over the finished work dir, which skips every cell and
// times the summary-validation + merge path alone.  The fan-out and resume
// reports must be byte-identical to the sequential one — a mismatch is a
// determinism bug and fails the bench before any timing is reported.
#include "bench_util.h"

#include <chrono>
#include <filesystem>
#include <string>

#include "matrix/engine.h"
#include "matrix/grid.h"

namespace pathsel {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

matrix::GridConfig bench_grid() {
  matrix::GridConfig g;
  g.name = "bench";
  // Rides PATHSEL_BENCH_SCALE like every other bench: 0.05 at the CI
  // scale of 0.2, a still-tractable 0.25 at full scale.
  g.scale = 0.25 * bench::bench_scale();
  g.datasets = {"UW3"};
  g.faults = {0.0, 0.15};
  g.metrics = {core::Metric::kRtt};
  g.policies = {matrix::PolicySpec{},
                matrix::PolicySpec{matrix::PolicyKind::kDisjoint,
                                   core::Kernel::kAuto, 2}};
  g.samples = {0};
  g.seeds = {1999};
  return g;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("pathsel_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void run() {
  bench::print_experiment_header(
      "Matrix engine", "4-cell what-if grid over UW3, three execution modes",
      "the merged report is byte-identical whether cells run inline, under "
      "forked workers, or as a pure merge over reused summaries; fan-out "
      "buys wall-clock without touching a single output byte");

  const matrix::GridConfig grid = bench_grid();

  // --- Inline: every cell in this process.  The matrix.* phases and
  // counters recorded here are what the perf gate compares.
  matrix::MatrixOptions seq;
  seq.grid = grid;
  seq.work_dir = fresh_dir("matrix_seq");
  seq.workers = 0;
  seq.threads = 1;
  const auto seq_start = Clock::now();
  const matrix::MatrixReport sequential = matrix::run_matrix(seq);
  const double seq_ms = ms_since(seq_start);
  if (!sequential.status.is_ok()) {
    bench::notef("sequential run failed: %s\n",
                 sequential.status.to_string().c_str());
    return;
  }

  // --- Fan-out: two forked workers over a fresh work dir.  Counters and
  // phases accrue in the children and die with them; the parent-side wall
  // clock is the number, and byte-identity is the invariant.
  matrix::MatrixOptions fan = seq;
  fan.work_dir = fresh_dir("matrix_fan");
  fan.workers = 2;
  const auto fan_start = Clock::now();
  const matrix::MatrixReport fanned = matrix::run_matrix(fan);
  const double fan_ms = ms_since(fan_start);
  if (!fanned.status.is_ok()) {
    bench::notef("fan-out run failed: %s\n",
                 fanned.status.to_string().c_str());
    return;
  }
  if (fanned.report != sequential.report) {
    bench::notef("DETERMINISM BUG: 2-worker report differs from inline\n");
    return;
  }

  // --- Pure merge: --resume over the finished sequential dir reuses all
  // cells, so this times summary validation + artifact checks + render.
  matrix::MatrixOptions merge = seq;
  merge.resume = true;
  const auto merge_start = Clock::now();
  const matrix::MatrixReport merged = matrix::run_matrix(merge);
  const double merge_ms = ms_since(merge_start);
  if (!merged.status.is_ok() ||
      merged.cells_reused != merged.cells_total) {
    bench::notef("merge-only resume failed or re-ran cells\n");
    return;
  }
  if (merged.report != sequential.report) {
    bench::notef("DETERMINISM BUG: merge-only report differs from inline\n");
    return;
  }

  const auto cells = static_cast<double>(sequential.cells_total);
  Table modes{"matrix execution modes (4 cells, UW3)"};
  modes.set_header({"mode", "cells run", "wall ms", "cells/sec"});
  modes.add_row({"inline (workers 0)", std::to_string(sequential.cells_run),
                 Table::fmt(seq_ms, 1),
                 Table::fmt(1e3 * cells / (seq_ms > 0.0 ? seq_ms : 1.0), 1)});
  modes.add_row({"fan-out (workers 2)", std::to_string(fanned.cells_run),
                 Table::fmt(fan_ms, 1),
                 Table::fmt(1e3 * cells / (fan_ms > 0.0 ? fan_ms : 1.0), 1)});
  modes.add_row({"merge only (resume)", "0", Table::fmt(merge_ms, 1), "-"});
  bench::emit(modes);

  bench::notef("fan-out speedup: %.2fx over inline; merge-only replay is "
               "%.1f%% of a full run\n",
               fan_ms > 0.0 ? seq_ms / fan_ms : 0.0,
               seq_ms > 0.0 ? 100.0 * merge_ms / seq_ms : 0.0);
  bench::notef("report: %zu bytes, identical across all three modes\n",
               sequential.report.size());

  std::filesystem::remove_all(seq.work_dir);
  std::filesystem::remove_all(fan.work_dir);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "matrix")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
