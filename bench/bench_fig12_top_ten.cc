// Figure 12: effect of greedily removing the ten hosts with the greatest
// impact on the RTT improvement CDF (UW3).
#include "bench_util.h"

#include "core/contribution.h"
#include "core/figures.h"
#include "stats/ks.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 12", "UW3 RTT improvement CDF with and without the 'top ten' hosts",
      "removing the top ten hosts does NOT dramatically shift the CDF: the "
      "superior alternates are not attributable to a few hosts");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  const auto table = core::PathTable::build(catalog.uw3(), opt);
  const auto result = core::remove_top_hosts(table, core::Metric::kRtt, 10);

  const auto full_cdf = core::improvement_cdf(result.full_results);
  const auto reduced_cdf = core::improvement_cdf(result.reduced_results);
  bench::emit_series("Figure 12: top-ten removal",
               {bench::cdf_series(full_cdf, "all UW3 hosts"),
                bench::cdf_series(reduced_cdf, "without 'top ten'")});

  Table summary{"Figure 12 summary"};
  summary.set_header({"curve", "pairs", "% better", "median improvement (ms)"});
  summary.add_row({"all hosts", std::to_string(result.full_results.size()),
                   Table::pct(full_cdf.fraction_above(0.0)),
                   Table::fmt(full_cdf.value_at_fraction(0.5), 1)});
  summary.add_row({"without top ten",
                   std::to_string(result.reduced_results.size()),
                   Table::pct(reduced_cdf.fraction_above(0.0)),
                   Table::fmt(reduced_cdf.value_at_fraction(0.5), 1)});
  bench::emit(summary);

  const auto ks = stats::ks_two_sample(full_cdf.sorted_values(),
                                       reduced_cdf.sorted_values());
  bench::notef("KS distance between full and reduced CDFs: %.3f (p = %.3g)\n",
               ks.statistic, ks.p_value);
  std::string removed = "removed hosts (greedy order):";
  for (const auto h : result.removed) {
    removed += ' ';
    removed += std::to_string(h.value());
  }
  std::printf("%s\n", removed.c_str());
  bench::note(removed);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig12_top_ten")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
