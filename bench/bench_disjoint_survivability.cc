// Disjointness vs availability: do the k disjoint alternates survive the
// failures that make you need them?
//
// Freezes the fault-free UW3 path choices — the direct path, the best
// overlapping alternate (the paper's Figure 1 winner), and k mutually
// link-disjoint alternates (Suurballe/Bhandari, k in {1, 2, 3}) — then
// replays deterministic fault schedules at 0/5/15/30% intensity against
// them (sim/survivability) and reports mean availability and the
// fully-available pair fraction per path class, plus the
// disjointness-vs-availability CDF at 15% intensity.  The 0% row is the
// engine's identity check: every path class must report 100% availability.
// The Qazi & Moors expectation is the headline: at 15%+ intensity having
// any of k >= 2 disjoint alternates strictly beats the single best
// overlapping alternate, because the overlap shares fate with the failure.
#include "bench_util.h"

#include <unordered_map>

#include "core/alternate.h"
#include "core/disjoint.h"
#include "core/path_table.h"
#include "sim/fault.h"
#include "sim/survivability.h"

namespace pathsel {
namespace {

constexpr int kMaxK = 3;

std::uint64_t pair_key(topo::HostId a, topo::HostId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.value()))
          << 32) |
         static_cast<std::uint32_t>(b.value());
}

std::vector<topo::HostId> full_hops(topo::HostId a,
                                    const std::vector<topo::HostId>& via,
                                    topo::HostId b) {
  std::vector<topo::HostId> hops;
  hops.reserve(via.size() + 2);
  hops.push_back(a);
  hops.insert(hops.end(), via.begin(), via.end());
  hops.push_back(b);
  return hops;
}

void run() {
  bench::print_experiment_header(
      "Disjoint survivability",
      "UW3 path classes replayed under 0/5/15/30% fault intensity",
      "at 0% every class is 100% available; at >= 15% having any of k >= 2 "
      "disjoint alternates strictly beats the best overlapping alternate "
      "(disjointness, not raw quality, buys availability)");

  meas::Catalog catalog = bench::make_catalog();
  const meas::Dataset& ds = catalog.uw3();
  const sim::Network& net = catalog.world98();
  const Duration trace = catalog.spec("UW3").config.duration;

  core::BuildOptions build;
  build.min_samples = bench::scaled_min_samples();
  const core::PathTable table = core::PathTable::build(ds, build);
  bench::notef("path graph: %zu measured paths over %zu hosts\n",
               table.edges().size(), table.hosts().size());

  // Fault-free path choices, frozen before any fault is injected.
  core::AnalyzerOptions alt_options;
  const std::vector<core::PairResult> alternates =
      core::analyze_alternate_paths(table, alt_options);
  std::unordered_map<std::uint64_t, const core::PairResult*> alternate_by_pair;
  for (const core::PairResult& r : alternates) {
    alternate_by_pair.emplace(pair_key(r.a, r.b), &r);
  }
  // Separate sweeps per k: Suurballe's k=2 solution may reroute the k=1
  // path, so the k sets are not prefixes of each other.
  std::vector<std::vector<core::PairDisjointResult>> disjoint_by_k;
  for (int k = 1; k <= kMaxK; ++k) {
    core::DisjointOptions opt;
    opt.k = k;
    const auto swept = core::compute_disjoint_alternates(table, opt);
    disjoint_by_k.push_back(swept.is_ok()
                                ? swept.value()
                                : std::vector<core::PairDisjointResult>{});
  }

  // One PairSpec per measured pair that has both an overlapping alternate
  // and at least one disjoint alternate: paths = direct, overlap, then each
  // k's disjoint set; groups = "any of k" per k.
  std::vector<sim::PairSpec> specs;
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < table.edges().size(); ++i) {
    const core::PathEdge& edge = table.edges()[i];
    const auto alt = alternate_by_pair.find(pair_key(edge.a, edge.b));
    if (alt == alternate_by_pair.end() || alt->second->via.empty() ||
        disjoint_by_k[0][i].paths.empty()) {
      ++skipped;
      continue;
    }
    sim::PairSpec spec;
    spec.paths.push_back({"direct", full_hops(edge.a, {}, edge.b)});
    spec.paths.push_back(
        {"overlap", full_hops(edge.a, alt->second->via, edge.b)});
    for (int k = 1; k <= kMaxK; ++k) {
      sim::PathGroup group;
      group.label = "any" + std::to_string(k);
      for (const core::DisjointPath& p :
           disjoint_by_k[static_cast<std::size_t>(k - 1)][i].paths) {
        group.members.push_back(spec.paths.size());
        spec.paths.push_back({"disjoint", full_hops(edge.a, p.via, edge.b)});
      }
      spec.groups.push_back(std::move(group));
    }
    specs.push_back(std::move(spec));
  }
  bench::notef("pairs replayed: %zu (%zu without both path classes)\n",
               specs.size(), skipped);

  Table mean_table{"mean availability (UW3)"};
  mean_table.set_header(
      {"intensity", "direct", "overlap", "any-1", "any-2", "any-3"});
  Table full_table{"fully available pairs (UW3)"};
  full_table.set_header(
      {"intensity", "direct", "overlap", "any-1", "any-2", "any-3"});

  std::vector<Series> cdf_at_15;
  for (const double intensity : {0.0, 0.05, 0.15, 0.30}) {
    const sim::FaultPlan plan{
        sim::FaultConfig::at_intensity(intensity), net.topology(), trace};
    const auto replayed = sim::replay_survivability(net, plan, specs, {});
    if (!replayed.is_ok()) {
      mean_table.add_row({Table::pct(intensity), "-", "-", "-", "-",
                          replayed.status().to_string()});
      continue;
    }
    const std::vector<sim::PairSurvivability>& results = replayed.value();
    // Column order matches the tables: direct, overlap, any-1..any-3.
    std::vector<std::vector<double>> columns(2 + kMaxK);
    for (const sim::PairSurvivability& r : results) {
      columns[0].push_back(r.paths[0].availability);
      columns[1].push_back(r.paths[1].availability);
      for (int k = 0; k < kMaxK; ++k) {
        columns[2 + static_cast<std::size_t>(k)].push_back(
            r.groups[static_cast<std::size_t>(k)].availability);
      }
    }
    std::vector<std::string> mean_row{Table::pct(intensity)};
    std::vector<std::string> full_row{Table::pct(intensity)};
    std::vector<double> means;
    for (const std::vector<double>& col : columns) {
      double sum = 0.0;
      std::size_t full = 0;
      for (const double a : col) {
        sum += a;
        if (a >= 1.0) ++full;
      }
      const double mean = col.empty() ? 0.0 : sum / static_cast<double>(col.size());
      means.push_back(mean);
      mean_row.push_back(Table::fmt(100.0 * mean, 2) + "%");
      full_row.push_back(Table::pct(
          col.empty() ? 0.0 : static_cast<double>(full) /
                                  static_cast<double>(col.size())));
    }
    mean_table.add_row(mean_row);
    full_table.add_row(full_row);

    if (intensity >= 0.15) {
      const bool dominates = means[3] > means[1] && means[4] > means[1];
      bench::notef(
          "intensity %s: disjoint k>=2 %s the overlapping alternate "
          "(overlap %.2f%%, any-2 %.2f%%, any-3 %.2f%%)\n",
          Table::pct(intensity).c_str(),
          dominates ? "strictly dominates" : "DOES NOT dominate",
          100.0 * means[1], 100.0 * means[3], 100.0 * means[4]);
    }
    if (intensity == 0.15) {
      cdf_at_15.push_back(bench::cdf_series(
          stats::EmpiricalCdf{std::move(columns[1])}, "overlap", 0.0, 1.0));
      for (int k = 0; k < kMaxK; ++k) {
        cdf_at_15.push_back(bench::cdf_series(
            stats::EmpiricalCdf{
                std::move(columns[2 + static_cast<std::size_t>(k)])},
            "any" + std::to_string(k + 1), 0.0, 1.0));
      }
    }
  }

  bench::emit(mean_table);
  bench::emit(full_table);
  bench::emit_series("disjointness vs availability CDF (intensity 15%)",
                     cdf_at_15);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "disjoint_survivability")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
