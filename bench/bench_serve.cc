// Online serving throughput and latency: how fast does the serve engine
// fold incremental updates, and how quickly does it answer while updating?
//
// Builds a ServeEngine over the UW3 dataset (no journal: the fsync'd write
// path is covered by the crash-safety tests; gating CI on disk latency
// would measure the runner, not the code), then drives three deterministic
// phases: update rounds over every measured pair with a flush barrier per
// round (updates/sec, incremental recompute cost), single-reader query
// sweeps over every pair and both metrics (p50/p99/max lock-free read
// latency), and a concurrent sweep with four reader threads racing the
// writer.  A small disjoint batch exercises the budgeted Suurballe path,
// including deterministic zero-budget timeouts.
//
// Every core.serve.* counter in the --json report is exact for a fixed
// (seed, scale): accepted == applied, shed == 0, query counts are closed
// formulas — the perf gate compares them verbatim, so a silently changed
// work profile fails even when the timings look fine.
#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/alternate.h"
#include "core/path_table.h"
#include "serve/engine.h"

namespace pathsel {
namespace {

constexpr int kUpdateRounds = 6;
constexpr int kQueryRounds = 8;
constexpr std::size_t kConcurrentReaders = 4;
constexpr std::size_t kDisjointQueries = 48;
constexpr std::size_t kDeadlineQueries = 8;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

void run() {
  bench::print_experiment_header(
      "Serve engine", "online updates + lock-free queries over UW3",
      "served answers stay bit-identical to batch recomputation (pinned by "
      "the differential tests) while updates fold in at O(rows-touched) "
      "instead of O(N^3) and reads stay lock-free");

  meas::Catalog catalog = bench::make_catalog();
  const meas::Dataset& ds = catalog.uw3();

  serve::ServeOptions options;
  options.build.min_samples = bench::scaled_min_samples();
  const auto build_start = Clock::now();
  Result<std::unique_ptr<serve::ServeEngine>> created =
      serve::ServeEngine::create(ds, options);
  if (!created.is_ok()) {
    bench::notef("engine build failed: %s\n",
                 created.status().to_string().c_str());
    return;
  }
  serve::ServeEngine& engine = *created.value();
  const double build_ms = ms_since(build_start);

  // The measured pair list drives both updates and queries, in edges() order.
  const core::PathTable table = core::PathTable::build(ds, options.build);
  std::vector<std::pair<topo::HostId, topo::HostId>> pairs;
  pairs.reserve(table.edges().size());
  for (const core::PathEdge& e : table.edges()) pairs.emplace_back(e.a, e.b);
  bench::notef("serving %zu measured pairs over %zu hosts (build %.1f ms)\n",
               pairs.size(), table.hosts().size(), build_ms);

  // --- Update rounds: every pair gets one new probe, then a flush barrier.
  const auto update_start = Clock::now();
  for (int round = 0; round < kUpdateRounds; ++round) {
    std::size_t i = 0;
    for (const auto& [a, b] : pairs) {
      serve::EdgeUpdate u;
      u.a = a;
      u.b = b;
      u.rtt_ms = 20.0 + static_cast<double>((i * 7 + static_cast<std::size_t>(
                                                         round) * 13) %
                                            200);
      u.lost = (i + static_cast<std::size_t>(round)) % 17 == 0;
      if (Status s = engine.submit(u); !s.is_ok()) {
        bench::notef("unexpected rejection: %s\n", s.to_string().c_str());
        return;
      }
      ++i;
    }
    if (Status s = engine.flush(); !s.is_ok()) {
      bench::notef("flush failed: %s\n", s.to_string().c_str());
      return;
    }
  }
  const double update_ms = ms_since(update_start);
  const std::size_t updates =
      pairs.size() * static_cast<std::size_t>(kUpdateRounds);
  bench::notef("updates: %zu applied in %.1f ms (%.0f updates/sec, "
               "%d flush barriers)\n",
               updates, update_ms, 1e3 * static_cast<double>(updates) /
                                       (update_ms > 0.0 ? update_ms : 1.0),
               kUpdateRounds);

  // --- Single-reader query latency over every pair, both metrics.
  std::vector<double> best_us;
  best_us.reserve(pairs.size() * 2 * static_cast<std::size_t>(kQueryRounds));
  for (int round = 0; round < kQueryRounds; ++round) {
    for (const core::Metric metric :
         {core::Metric::kRtt, core::Metric::kLoss}) {
      for (const auto& [a, b] : pairs) {
        const auto q = Clock::now();
        const serve::BestResponse r = engine.query_best(metric, a, b, 0);
        best_us.push_back(1e3 * ms_since(q));
        if (r.kind != serve::BestResponse::Kind::kOk &&
            r.kind != serve::BestResponse::Kind::kNoAlternate) {
          bench::notef("unexpected query kind for (%d, %d)\n", a.value(),
                       b.value());
          return;
        }
      }
    }
  }
  std::sort(best_us.begin(), best_us.end());

  // --- Budgeted disjoint queries, plus deterministic zero-budget timeouts.
  std::vector<double> disjoint_us;
  disjoint_us.reserve(kDisjointQueries);
  const std::size_t stride = std::max<std::size_t>(1, pairs.size() / kDisjointQueries);
  std::size_t issued = 0;
  for (std::size_t i = 0; i < pairs.size() && issued < kDisjointQueries;
       i += stride, ++issued) {
    const auto q = Clock::now();
    (void)engine.query_disjoint(core::Metric::kRtt, 2, pairs[i].first,
                                pairs[i].second, 0, -1.0);
    disjoint_us.push_back(1e3 * ms_since(q));
  }
  for (std::size_t i = 0; i < kDeadlineQueries; ++i) {
    (void)engine.query_disjoint(core::Metric::kRtt, 2, pairs[0].first,
                                pairs[0].second, 0, 0.0);
  }
  std::sort(disjoint_us.begin(), disjoint_us.end());

  Table latency{"serve query latency (UW3, microseconds)"};
  latency.set_header({"query", "count", "p50", "p99", "max"});
  latency.add_row({"best (both metrics)", std::to_string(best_us.size()),
                   Table::fmt(percentile(best_us, 0.50), 2),
                   Table::fmt(percentile(best_us, 0.99), 2),
                   Table::fmt(best_us.empty() ? 0.0 : best_us.back(), 2)});
  latency.add_row({"disjoint k=2", std::to_string(disjoint_us.size()),
                   Table::fmt(percentile(disjoint_us, 0.50), 2),
                   Table::fmt(percentile(disjoint_us, 0.99), 2),
                   Table::fmt(disjoint_us.empty() ? 0.0 : disjoint_us.back(),
                              2)});
  bench::emit(latency);

  // --- Concurrent readers racing the writer: one more update round while
  // four reader threads sweep every pair.  Fixed per-thread work keeps the
  // query counters exact; the wall time shows reads don't block on writes.
  const auto race_start = Clock::now();
  std::vector<std::thread> readers;
  readers.reserve(kConcurrentReaders);
  for (std::size_t slot = 0; slot < kConcurrentReaders; ++slot) {
    readers.emplace_back([&engine, &pairs, slot] {
      for (int round = 0; round < kQueryRounds; ++round) {
        for (const auto& [a, b] : pairs) {
          (void)engine.query_best(core::Metric::kRtt, a, b, slot + 1);
        }
      }
    });
  }
  std::size_t i = 0;
  for (const auto& [a, b] : pairs) {
    serve::EdgeUpdate u;
    u.a = a;
    u.b = b;
    u.rtt_ms = 30.0 + static_cast<double>(i % 100);
    (void)engine.submit(u);
    ++i;
  }
  (void)engine.flush();
  for (std::thread& t : readers) t.join();
  const double race_ms = ms_since(race_start);
  const std::size_t race_queries =
      kConcurrentReaders * static_cast<std::size_t>(kQueryRounds) *
      pairs.size();
  bench::notef("concurrent sweep: %zu queries across %zu readers + 1 update "
               "round in %.1f ms (%.0f queries/sec)\n",
               race_queries, kConcurrentReaders, race_ms,
               1e3 * static_cast<double>(race_queries) /
                   (race_ms > 0.0 ? race_ms : 1.0));

  const serve::ServeCounters counters = engine.counters();
  bench::notef("counters: %llu accepted, %llu applied, %llu shed, "
               "%llu snapshots, %llu best, %llu disjoint, %llu timeouts\n",
               static_cast<unsigned long long>(counters.updates_accepted),
               static_cast<unsigned long long>(counters.updates_applied),
               static_cast<unsigned long long>(counters.updates_shed),
               static_cast<unsigned long long>(counters.snapshots_published),
               static_cast<unsigned long long>(counters.queries_best),
               static_cast<unsigned long long>(counters.queries_disjoint),
               static_cast<unsigned long long>(counters.query_timeouts));
  engine.sync_metrics();  // exact core.serve.* counters into the report
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "serve")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
