// Table 1: characteristics of the datasets.
#include "bench_util.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Table 1", "characteristics of the regenerated datasets",
      "8 datasets; 15-39 hosts; 7.5k-217k measurements; 86-100% coverage");
  auto catalog = bench::make_catalog();

  Table table{"Table 1: dataset characteristics"};
  table.set_header({"dataset", "method", "duration", "hosts", "measurements",
                    "% paths covered", "paper: meas", "paper: cover"});
  struct Row {
    const char* name;
    const char* paper_meas;
    const char* paper_cover;
  };
  const Row rows[] = {
      {"D2-NA", "14896", "95%"}, {"D2", "35109", "97%"},
      {"N2-NA", "7582", "86%"},  {"N2", "18274", "88%"},
      {"UW1", "54034", "88%"},   {"UW3", "94420", "87%"},
      {"UW4-A", "216928", "100%"}, {"UW4-B", "9169", "100%"},
  };
  for (const Row& row : rows) {
    const meas::Dataset& ds = catalog.by_name(row.name);
    const char* method =
        ds.kind == meas::MeasurementKind::kTraceroute ? "traceroute" : "tcpanaly";
    char days[32];
    std::snprintf(days, sizeof days, "%.1f days", ds.duration.total_days());
    table.add_row({ds.name, method, days, std::to_string(ds.hosts.size()),
                   std::to_string(ds.completed_count()),
                   Table::pct(static_cast<double>(ds.covered_paths()) /
                              static_cast<double>(ds.potential_paths())),
                   row.paper_meas, row.paper_cover});
  }
  bench::emit(table);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "table1_datasets")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
