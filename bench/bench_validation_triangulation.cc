// Validation: triangulated propagation-delay estimates (the IDMaps-style
// cross-check the paper mentions in §2 — its tool suite can independently
// regenerate Francis et al.'s graphs).
#include "bench_util.h"

#include "core/triangulation.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Validation: propagation triangulation",
      "triangle-inequality bounds on pairwise propagation delay (UW3)",
      "estimates cluster near the measured value: the estimate/actual CDF "
      "rises steeply just above 1 (cf. Francis et al. [FJP+99])");
  auto catalog = bench::make_catalog();

  core::BuildOptions opt;
  opt.min_samples = bench::scaled_min_samples();
  opt.keep_samples = true;
  const auto table = core::PathTable::build(catalog.uw3(), opt);
  const auto results = core::triangulate_propagation(table);
  const auto cdf = core::triangulation_accuracy_cdf(results);

  bench::emit_series("triangulated estimate / measured propagation",
               {bench::cdf_series(cdf, "UW3 pairs", 0.0, 0.98)});

  std::size_t bracketed = 0;
  for (const auto& r : results) {
    if (r.lower <= r.actual + 1e-9 && r.actual <= r.upper + 1e-9) ++bracketed;
  }
  Table summary{"triangulation summary"};
  summary.set_header({"pairs", "% bracketed by bounds", "median ratio",
                      "p90 ratio"});
  summary.add_row({std::to_string(results.size()),
                   Table::pct(static_cast<double>(bracketed) /
                              static_cast<double>(results.size())),
                   Table::fmt(cdf.value_at_fraction(0.5), 2),
                   Table::fmt(cdf.value_at_fraction(0.9), 2)});
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "validation_triangulation")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
