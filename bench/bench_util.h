// Shared plumbing for the figure/table benches.
//
// Every bench regenerates one table or figure of the paper from a freshly
// collected (simulated) dataset and prints: a header naming the experiment
// and the paper's expectation, the plotted series as CSV (decimated to keep
// output reviewable), and a one-line measured summary.  EXPERIMENTS.md
// records paper-vs-measured for each bench.
//
// PATHSEL_BENCH_SCALE (0 < s <= 1) shrinks trace durations for quick runs;
// the default 1.0 regenerates full-size datasets.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>

#include "meas/catalog.h"
#include "stats/cdf.h"
#include "util/bench_report.h"
#include "util/metrics.h"
#include "util/table.h"

namespace pathsel::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("PATHSEL_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 1.0;
}

/// The paper's 30-measurement threshold, scaled with the trace length so
/// reduced-scale runs keep a usable edge set.
inline int scaled_min_samples(int full_scale_threshold = 30) {
  const int scaled =
      static_cast<int>(full_scale_threshold * bench_scale() + 0.5);
  return scaled < 3 ? 3 : scaled;
}

inline meas::Catalog make_catalog() {
  meas::CatalogConfig cfg;
  cfg.seed = 1999;
  cfg.scale = bench_scale();
  return meas::Catalog{cfg};
}

inline void print_experiment_header(const char* id, const char* description,
                                    const char* paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, description);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("scale: %.2f\n", bench_scale());
  std::printf("==============================================================\n");
}

/// Thins a series to at most `max_points` evenly spaced points.
inline Series decimate(const Series& s, std::size_t max_points = 48) {
  if (s.x.size() <= max_points) return s;
  Series out;
  out.name = s.name;
  const double step =
      static_cast<double>(s.x.size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(static_cast<double>(i) * step);
    out.x.push_back(s.x[idx]);
    out.y.push_back(s.y[idx]);
  }
  return out;
}

inline Series cdf_series(const stats::EmpiricalCdf& cdf, std::string name,
                         double trim_lo = 0.02, double trim_hi = 0.98) {
  return decimate(cdf.to_series(std::move(name), trim_lo, trim_hi));
}

// --json plumbing.  Each bench binary is one translation unit, so one
// function-local BenchReport per process is enough.  emit()/emit_series()
// print exactly what the pre-JSON benches printed AND record the same result
// into the report; finish() writes the report only when --json was given.

struct JsonState {
  BenchReport report{""};
  std::string path;  // empty: no JSON requested
};

inline JsonState& json_state() {
  static JsonState s;
  return s;
}

/// Parses bench argv (`--json <path>` or `--json=<path>`); prints usage to
/// stderr and returns false on anything unrecognized.  The path is
/// probe-opened immediately so an unwritable destination fails the bench up
/// front with a clear message — not after minutes of collection with the
/// report silently dropped.  Requesting JSON also enables the metrics
/// registry so the report's "metrics" section is populated (the registry
/// otherwise follows PATHSEL_METRICS).
inline bool init(int argc, char** argv, const char* bench_id) {
  JsonState& s = json_state();
  s.report = BenchReport{bench_id};
  s.report.set_scale(bench_scale());
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return false;
      }
      s.path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      s.path = arg + 7;
    } else {
      std::fprintf(stderr, "unknown argument: %s\nusage: %s [--json <path>]\n",
                   arg, argv[0]);
      return false;
    }
  }
  if (!s.path.empty()) {
    // Append mode: the probe must not truncate an existing report if this
    // run later dies before finish().
    std::ofstream probe{s.path, std::ios::app};
    if (!probe) {
      std::fprintf(stderr, "--json: cannot open '%s' for writing: %s\n",
                   s.path.c_str(), std::strerror(errno));
      return false;
    }
    MetricsRegistry::global().enable();
  }
  return true;
}

/// Prints the table to stdout and records it in the JSON report.
inline void emit(const Table& table) {
  table.print(std::cout);
  json_state().report.add_table(table);
}

/// Prints the series as CSV and records them in the JSON report.
inline void emit_series(std::string_view title,
                        const std::vector<Series>& series) {
  print_series(std::cout, title, series);
  json_state().report.add_series(title, series);
}

/// Records a free-form result line in the JSON report (callers print their
/// own human-readable form).
inline void note(std::string_view text) { json_state().report.add_note(text); }

/// printf-style convenience: prints the line to stdout and records it.
template <typename... Args>
inline void notef(const char* format, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, format, args...);
  std::fputs(buf, stdout);
  // Strip one trailing newline for the recorded note.
  std::string text{buf};
  if (!text.empty() && text.back() == '\n') text.pop_back();
  note(text);
}

/// Writes the JSON report if --json was requested; returns the process exit
/// code.
inline int finish() {
  JsonState& s = json_state();
  if (s.path.empty()) return 0;
  return s.report.write_file(s.path, MetricsRegistry::global().snapshot())
             ? 0
             : 1;
}

}  // namespace pathsel::bench
