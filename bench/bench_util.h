// Shared plumbing for the figure/table benches.
//
// Every bench regenerates one table or figure of the paper from a freshly
// collected (simulated) dataset and prints: a header naming the experiment
// and the paper's expectation, the plotted series as CSV (decimated to keep
// output reviewable), and a one-line measured summary.  EXPERIMENTS.md
// records paper-vs-measured for each bench.
//
// PATHSEL_BENCH_SCALE (0 < s <= 1) shrinks trace durations for quick runs;
// the default 1.0 regenerates full-size datasets.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>

#include "meas/catalog.h"
#include "stats/cdf.h"
#include "util/table.h"

namespace pathsel::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("PATHSEL_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 1.0;
}

/// The paper's 30-measurement threshold, scaled with the trace length so
/// reduced-scale runs keep a usable edge set.
inline int scaled_min_samples(int full_scale_threshold = 30) {
  const int scaled =
      static_cast<int>(full_scale_threshold * bench_scale() + 0.5);
  return scaled < 3 ? 3 : scaled;
}

inline meas::Catalog make_catalog() {
  meas::CatalogConfig cfg;
  cfg.seed = 1999;
  cfg.scale = bench_scale();
  return meas::Catalog{cfg};
}

inline void print_experiment_header(const char* id, const char* description,
                                    const char* paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, description);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("scale: %.2f\n", bench_scale());
  std::printf("==============================================================\n");
}

/// Thins a series to at most `max_points` evenly spaced points.
inline Series decimate(const Series& s, std::size_t max_points = 48) {
  if (s.x.size() <= max_points) return s;
  Series out;
  out.name = s.name;
  const double step =
      static_cast<double>(s.x.size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(static_cast<double>(i) * step);
    out.x.push_back(s.x[idx]);
    out.y.push_back(s.y[idx]);
  }
  return out;
}

inline Series cdf_series(const stats::EmpiricalCdf& cdf, std::string name,
                         double trim_lo = 0.02, double trim_hi = 0.98) {
  return decimate(cdf.to_series(std::move(name), trim_lo, trim_hi));
}

}  // namespace pathsel::bench
