// --json support for the google-benchmark micro benches.
//
// google-benchmark has its own --benchmark_* flag family and JSON format;
// to keep every bench_* binary on the one schema in util/bench_report.h,
// these binaries replace BENCHMARK_MAIN() with PATHSEL_GBENCH_MAIN(name):
// a main() that strips `--json <path>` before benchmark::Initialize sees it,
// runs the registered benchmarks through a reporter that both prints the
// normal console output and records one series per benchmark (x = repetition
// index, y = real time in ms), and writes the standard report on exit.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace pathsel::bench {

/// ConsoleReporter that additionally records every run into the report.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Series s;
      s.name = run.benchmark_name();
      s.x.push_back(static_cast<double>(run.iterations));
      s.y.push_back(run.GetAdjustedRealTime());
      rows_.push_back(std::move(s));
    }
  }

  void write_series() {
    if (!rows_.empty()) emit_recorded_series("microbenchmark runs", rows_);
    rows_.clear();
  }

 private:
  static void emit_recorded_series(std::string_view title,
                                   const std::vector<Series>& series) {
    // Console output already happened via ConsoleReporter; only record.
    json_state().report.add_series(title, series);
  }

  std::vector<Series> rows_;
};

/// Shared main body: returns the process exit code.
inline int gbench_main(int argc, char** argv, const char* bench_id) {
  // Split off --json before google-benchmark validates the remaining flags.
  std::vector<char*> passthrough;
  std::vector<char*> ours;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      ours.push_back(argv[i]);
      if (arg == "--json" && i + 1 < argc) ours.push_back(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  ours.insert(ours.begin(), argv[0]);
  int ours_argc = static_cast<int>(ours.size());
  if (!init(ours_argc, ours.data(), bench_id)) return 2;

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 2;
  }
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write_series();
  benchmark::Shutdown();
  return finish();
}

}  // namespace pathsel::bench

#define PATHSEL_GBENCH_MAIN(bench_id)                     \
  int main(int argc, char** argv) {                       \
    return pathsel::bench::gbench_main(argc, argv, bench_id); \
  }
