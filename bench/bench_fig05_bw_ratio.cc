// Figure 5: CDF of the ratio of the best one-hop alternate bandwidth to the
// measured default bandwidth.
#include "bench_util.h"

#include "core/bandwidth.h"
#include "core/figures.h"

namespace pathsel {
namespace {

void run() {
  bench::print_experiment_header(
      "Figure 5", "CDF of relative bandwidth (best alternate / default)",
      "for at least 10-20% of paths the improvement is >= 3x; the N2 vs "
      "N2-NA gap of Figure 4 largely disappears");
  auto catalog = bench::make_catalog();

  std::vector<Series> series;
  Table summary{"Figure 5 summary"};
  summary.set_header({"dataset", "composition", "% ratio > 1", "% ratio >= 3"});
  for (const char* name : {"N2", "N2-NA"}) {
    core::BuildOptions opt;
    opt.min_samples = bench::scaled_min_samples();
    const auto table = core::PathTable::build(catalog.by_name(name), opt);
    for (const auto& [label, comp] :
         {std::pair{"pessimistic", core::LossComposition::kPessimistic},
          std::pair{"optimistic", core::LossComposition::kOptimistic}}) {
      const auto results = core::analyze_bandwidth(table, comp);
      const auto cdf = core::bandwidth_ratio_cdf(results);
      series.push_back(
          bench::cdf_series(cdf, std::string(name) + " " + label));
      summary.add_row({name, label, Table::pct(cdf.fraction_above(1.0)),
                       Table::pct(cdf.fraction_above(3.0))});
    }
  }
  bench::emit_series("Figure 5: relative bandwidth CDF", series);
  bench::emit(summary);
}

}  // namespace
}  // namespace pathsel

int main(int argc, char** argv) {
  if (!pathsel::bench::init(argc, argv, "fig05_bw_ratio")) return 2;
  pathsel::run();
  return pathsel::bench::finish();
}
