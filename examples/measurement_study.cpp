// A miniature end-to-end reproduction of the paper's core study: regenerate
// a UW3-like dataset, then produce the Figure 1/Figure 3 summaries and the
// Table 2 significance classification for it.
#include <iostream>

#include "core/alternate.h"
#include "core/confidence.h"
#include "core/figures.h"
#include "core/path_table.h"
#include "meas/catalog.h"
#include "util/table.h"

using namespace pathsel;

int main() {
  meas::CatalogConfig cfg;
  cfg.seed = 2042;
  cfg.scale = 0.25;  // a quarter-length trace keeps this example fast
  meas::Catalog catalog{cfg};
  const meas::Dataset& uw3 = catalog.uw3();
  std::printf("dataset %s: %zu hosts, %zu completed measurements\n",
              uw3.name.c_str(), uw3.hosts.size(), uw3.completed_count());

  core::BuildOptions build;
  build.min_samples = 8;
  const auto table = core::PathTable::build(uw3, build);
  std::printf("path-quality graph: %zu measured undirected paths\n\n",
              table.edges().size());

  // Figure 1 flavor: round-trip time.
  const auto rtt = core::analyze_alternate_paths(table, {});
  const auto rtt_cdf = core::improvement_cdf(rtt);
  Table fig1{"RTT alternates (Figure 1 flavor)"};
  fig1.set_header({"pairs", "% better", "% gain >= 20ms", "median gain"});
  fig1.add_row({std::to_string(rtt.size()),
                Table::pct(rtt_cdf.fraction_above(0.0)),
                Table::pct(rtt_cdf.fraction_above(20.0)),
                Table::fmt(rtt_cdf.value_at_fraction(0.5), 1) + " ms"});
  fig1.print(std::cout);

  // Figure 3 flavor: loss rate.
  core::AnalyzerOptions loss_opt;
  loss_opt.metric = core::Metric::kLoss;
  const auto loss = core::analyze_alternate_paths(table, loss_opt);
  const auto loss_cdf = core::improvement_cdf(loss);
  Table fig3{"loss alternates (Figure 3 flavor)"};
  fig3.set_header({"pairs", "% better", "% gain >= 5pp"});
  fig3.add_row({std::to_string(loss.size()),
                Table::pct(loss_cdf.fraction_above(0.0)),
                Table::pct(loss_cdf.fraction_above(0.05))});
  fig3.print(std::cout);

  // Table 2 flavor: is the RTT difference statistically significant?
  const auto tally = core::classify_significance(rtt);
  Table table2{"95% significance (Table 2 flavor)"};
  table2.set_header({"better", "indeterminate", "worse"});
  table2.add_row({Table::pct(tally.better), Table::pct(tally.indeterminate),
                  Table::pct(tally.worse)});
  table2.print(std::cout);
  return 0;
}
