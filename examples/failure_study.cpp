// Failure study: what happens to end-to-end paths when public exchange
// points fail?  Uses the link-failure API to take down each exchange city's
// fabric in turn, recomputes routing, and reports how many host pairs lose
// connectivity outright and how much the survivors' propagation delay
// inflates — then shows that an overlay relay recovers part of the loss.
#include <cstdio>
#include <map>
#include <vector>

#include "route/bgp.h"
#include "route/igp.h"
#include "route/path.h"
#include "stats/summary.h"
#include "topo/generator.h"

using namespace pathsel;

int main() {
  topo::GeneratorConfig gen;
  gen.seed = 23;
  gen.backbone_count = 5;
  gen.regional_count = 12;
  gen.stub_count = 30;
  topo::Topology topo = topo::generate_topology(gen);

  // Baseline routing.
  std::vector<std::pair<topo::HostId, topo::HostId>> pairs;
  std::map<std::pair<int, int>, double> baseline_ms;
  {
    const route::IgpTables igp{topo};
    const route::BgpTables bgp{topo};
    const route::PathResolver resolver{topo, igp, bgp};
    for (const auto& a : topo.hosts()) {
      for (const auto& b : topo.hosts()) {
        if (a.id == b.id) continue;
        const auto p = resolver.resolve(a.attachment, b.attachment);
        if (!p.valid()) continue;
        pairs.emplace_back(a.id, b.id);
        baseline_ms[{a.id.value(), b.id.value()}] =
            p.propagation_delay_ms(topo);
      }
    }
  }
  std::printf("baseline: %zu routable host pairs\n\n", pairs.size());
  std::printf("%-10s %-14s %-16s %-14s\n", "exchange", "pairs cut",
              "mean inflation", "links failed");

  // Group public-exchange links by city and fail one fabric at a time.
  std::map<std::size_t, std::vector<topo::LinkId>> fabric;
  for (const auto& l : topo.links()) {
    if (l.kind == topo::LinkKind::kPublicExchange) {
      fabric[topo.router(l.a).city].push_back(l.id);
    }
  }

  for (const auto& [city, links] : fabric) {
    for (const auto l : links) topo.set_link_down(l, true);
    const route::IgpTables igp{topo};
    const route::BgpTables bgp{topo};
    const route::PathResolver resolver{topo, igp, bgp};

    std::size_t cut = 0;
    stats::Summary inflation;
    for (const auto& [a, b] : pairs) {
      const auto p = resolver.resolve(topo.host(a).attachment,
                                      topo.host(b).attachment);
      if (!p.valid()) {
        ++cut;
        continue;
      }
      inflation.add(p.propagation_delay_ms(topo) /
                    baseline_ms.at({a.value(), b.value()}));
    }
    std::printf("%-10s %-14zu %-16s %zu\n",
                topo::cities()[city].name.data(), cut,
                inflation.empty()
                    ? "-"
                    : (std::to_string(inflation.mean()).substr(0, 5) + "x").c_str(),
                links.size());
    for (const auto l : links) topo.set_link_down(l, false);
  }

  std::printf("\nExchange failures rarely partition the mesh (backbones peer at\n"
              "several exchanges), but they reroute traffic onto longer paths —\n"
              "the same mechanism that makes alternate host paths attractive\n"
              "when an exchange is congested rather than dead.\n");
  return 0;
}
