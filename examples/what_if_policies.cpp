// Ablation of the routing layers the paper blames for path inflation (§3):
// on one topology, compare host-to-host propagation delay under
//   1. policy routing with hot-potato (early-exit) egress — the Internet,
//   2. policy routing with best-exit egress selection,
//   3. globally optimal minimum-delay routing (no policy at all),
//   4. global minimum-hop routing (the "hop count" metric of the era).
#include <cstdio>
#include <vector>

#include "route/path.h"
#include "sim/network.h"
#include "stats/summary.h"
#include "topo/generator.h"

using namespace pathsel;

int main() {
  topo::GeneratorConfig gen;
  gen.seed = 11;
  gen.backbone_count = 6;
  gen.regional_count = 16;
  gen.stub_count = 50;
  const topo::Topology topo = topo::generate_topology(gen);
  const route::IgpTables igp{topo};
  const route::BgpTables bgp{topo};
  const route::PathResolver early{topo, igp, bgp, route::EgressPolicy::kEarlyExit};
  const route::PathResolver best{topo, igp, bgp, route::EgressPolicy::kBestExit};

  stats::Summary early_stretch;
  stats::Summary best_stretch;
  stats::Summary hop_stretch;
  std::size_t inflated = 0;
  std::size_t pairs = 0;

  const auto& hosts = topo.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      const auto r_early =
          early.resolve(hosts[i].attachment, hosts[j].attachment);
      const auto r_best = best.resolve(hosts[i].attachment, hosts[j].attachment);
      const auto r_opt =
          route::optimal_delay_path(topo, hosts[i].attachment, hosts[j].attachment);
      const auto r_hop =
          route::min_hop_path(topo, hosts[i].attachment, hosts[j].attachment);
      if (!r_early.valid() || !r_opt.valid()) continue;
      const double opt = r_opt.propagation_delay_ms(topo);
      if (opt <= 0.0) continue;
      ++pairs;
      const double e = r_early.propagation_delay_ms(topo) / opt;
      early_stretch.add(e);
      best_stretch.add(r_best.propagation_delay_ms(topo) / opt);
      hop_stretch.add(r_hop.propagation_delay_ms(topo) / opt);
      if (e > 1.05) ++inflated;
    }
  }

  std::printf("propagation-delay stretch vs optimal (%zu ordered pairs)\n\n", pairs);
  std::printf("  %-34s mean    max\n", "routing policy");
  std::printf("  %-34s %.3f   %.2f\n", "BGP policy + early-exit (Internet)",
              early_stretch.mean(), early_stretch.max());
  std::printf("  %-34s %.3f   %.2f\n", "BGP policy + best-exit",
              best_stretch.mean(), best_stretch.max());
  std::printf("  %-34s %.3f   %.2f\n", "global min-hop", hop_stretch.mean(),
              hop_stretch.max());
  std::printf("  %-34s 1.000   1.00\n", "global min-delay (reference)");
  std::printf("\n%.0f%% of pairs are inflated more than 5%% over optimal "
              "by policy routing\n",
              100.0 * static_cast<double>(inflated) / static_cast<double>(pairs));
  std::printf("hot-potato egress alone accounts for a %.1f%% mean stretch "
              "increase over best-exit\n",
              100.0 * (early_stretch.mean() - best_stretch.mean()) /
                  best_stretch.mean());
  return 0;
}
