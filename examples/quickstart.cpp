// Quickstart: build a simulated Internet, measure it for a (simulated) day,
// and ask the paper's question for one host pair: is there an alternate
// path through another measurement host that beats the default route?
#include <cstdio>

#include "core/alternate.h"
#include "core/path_table.h"
#include "meas/collector.h"
#include "sim/network.h"
#include "topo/generator.h"

using namespace pathsel;

int main() {
  // 1. A late-90s-style Internet: tiered ASes, BGP policy routing, diurnal
  //    congestion.  Everything is driven by the seed.
  topo::GeneratorConfig gen;
  gen.seed = 7;
  gen.backbone_count = 5;
  gen.regional_count = 12;
  gen.stub_count = 30;
  sim::Network network{topo::generate_topology(gen), sim::NetworkConfig{}};
  std::printf("world: %zu ASes, %zu routers, %zu links, %zu hosts\n",
              network.topology().as_count(), network.topology().router_count(),
              network.topology().link_count(), network.topology().host_count());

  // 2. Run a one-day traceroute campaign between the first 12 hosts.
  std::vector<topo::HostId> hosts;
  for (int i = 0; i < 12; ++i) hosts.push_back(topo::HostId{i});
  meas::CollectorConfig campaign;
  campaign.duration = Duration::days(1);
  campaign.mean_interval = Duration::seconds(20);
  const meas::Dataset dataset =
      meas::collect(network, hosts, campaign, "quickstart");
  std::printf("campaign: %zu measurements, %zu/%zu paths covered\n",
              dataset.completed_count(), dataset.covered_paths(),
              dataset.potential_paths());

  // 3. Build the path-quality graph and compute the best alternate path for
  //    every measured pair.
  core::BuildOptions build;
  build.min_samples = 10;
  const core::PathTable table = core::PathTable::build(dataset, build);
  const auto results = core::analyze_alternate_paths(table, {});

  // 4. Report the most-improved pair.
  const core::PairResult* best = nullptr;
  for (const auto& r : results) {
    if (best == nullptr || r.improvement() > best->improvement()) best = &r;
  }
  if (best == nullptr) {
    std::printf("no pair had an alternate path\n");
    return 0;
  }
  const auto& topo = network.topology();
  std::printf("\nmost-improved pair: %s -> %s\n",
              topo.host(best->a).name.c_str(), topo.host(best->b).name.c_str());
  std::printf("  default mean RTT:   %.1f ms\n", best->default_value);
  std::printf("  best alternate RTT: %.1f ms via", best->alternate_value);
  for (const auto hop : best->via) {
    std::printf(" %s", topo.host(hop).name.c_str());
  }
  std::printf("\n  improvement:        %.1f ms (%.0f%% better)\n",
              best->improvement(),
              100.0 * (1.0 - best->alternate_value / best->default_value));

  std::size_t improved = 0;
  for (const auto& r : results) improved += r.improvement() > 0.0 ? 1u : 0u;
  std::printf("\n%zu of %zu measured pairs have a better alternate path\n",
              improved, results.size());
  return 0;
}
