// Detour/RON-style overlay routing — the system the paper's findings
// motivated.  A set of overlay nodes continuously probes the paths between
// themselves; each "flow" between two nodes is routed either directly (the
// Internet default) or through one overlay relay when recent probes say the
// relay is faster.  The example reports how much latency the overlay saves
// and how often it routes around the default path.
#include <cstdio>
#include <map>
#include <vector>

#include "sim/network.h"
#include "stats/summary.h"
#include "topo/generator.h"

using namespace pathsel;

namespace {

struct ProbeState {
  stats::Summary rtt;  // exponentially aged by periodic reset
};

double measured_rtt(const sim::Network& net, topo::HostId a, topo::HostId b,
                    SimTime t) {
  const auto result = net.traceroute(a, b, t);
  if (!result.completed) return -1.0;
  for (const auto& s : result.samples) {
    if (!s.lost) return s.rtt_ms;
  }
  return -1.0;
}

}  // namespace

int main() {
  topo::GeneratorConfig gen;
  gen.seed = 77;
  gen.backbone_count = 5;
  gen.regional_count = 14;
  gen.stub_count = 40;
  sim::Network net{topo::generate_topology(gen), sim::NetworkConfig{}};

  // Twelve overlay nodes.
  std::vector<topo::HostId> nodes;
  for (int i = 0; i < 12; ++i) nodes.push_back(topo::HostId{i * 2});

  // Every 10 simulated minutes: refresh the full-mesh probe table, then
  // route one "flow" per pair via direct vs best-relay and score both.
  stats::Summary direct_rtt;
  stats::Summary overlay_rtt;
  std::size_t detoured = 0;
  std::size_t flows = 0;

  std::map<std::pair<int, int>, double> last_rtt;
  for (int round = 0; round < 144; ++round) {  // one simulated day
    const SimTime now = SimTime::start() + Duration::minutes(10.0 * round);
    // Probe phase.
    for (const auto a : nodes) {
      for (const auto b : nodes) {
        if (a == b) continue;
        const double rtt = measured_rtt(net, a, b, now);
        if (rtt > 0.0) last_rtt[{a.value(), b.value()}] = rtt;
      }
    }
    // Routing phase: the overlay picks min(direct, best one-relay path)
    // from the *probe table*, then we charge it the ground-truth expected
    // RTT of its choice at this instant.
    for (const auto a : nodes) {
      for (const auto b : nodes) {
        if (a == b) continue;
        const auto direct_it = last_rtt.find({a.value(), b.value()});
        if (direct_it == last_rtt.end()) continue;
        double best = direct_it->second;
        topo::HostId relay{};
        for (const auto c : nodes) {
          if (c == a || c == b) continue;
          const auto leg1 = last_rtt.find({a.value(), c.value()});
          const auto leg2 = last_rtt.find({c.value(), b.value()});
          if (leg1 == last_rtt.end() || leg2 == last_rtt.end()) continue;
          if (leg1->second + leg2->second < best) {
            best = leg1->second + leg2->second;
            relay = c;
          }
        }
        // Ground truth for the chosen route.
        const auto& fwd = net.default_path(a, b);
        const auto& rev = net.default_path(b, a);
        const double truth_direct =
            net.expected_one_way_ms(fwd, now) + net.expected_one_way_ms(rev, now);
        double truth_overlay = truth_direct;
        if (relay.valid()) {
          const double leg1 =
              net.expected_one_way_ms(net.default_path(a, relay), now) +
              net.expected_one_way_ms(net.default_path(relay, a), now);
          const double leg2 =
              net.expected_one_way_ms(net.default_path(relay, b), now) +
              net.expected_one_way_ms(net.default_path(b, relay), now);
          truth_overlay = leg1 + leg2;
          ++detoured;
        }
        direct_rtt.add(truth_direct);
        overlay_rtt.add(std::min(truth_overlay, truth_direct * 10.0));
        ++flows;
      }
    }
  }

  std::printf("overlay routing over one simulated day, %zu flows\n", flows);
  std::printf("  mean direct RTT:  %.1f ms\n", direct_rtt.mean());
  std::printf("  mean overlay RTT: %.1f ms\n", overlay_rtt.mean());
  std::printf("  mean saving:      %.1f ms (%.1f%%)\n",
              direct_rtt.mean() - overlay_rtt.mean(),
              100.0 * (direct_rtt.mean() - overlay_rtt.mean()) /
                  direct_rtt.mean());
  std::printf("  flows detoured through a relay: %.1f%%\n",
              100.0 * static_cast<double>(detoured) /
                  static_cast<double>(flows));
  return 0;
}
